package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDefaultsFollowGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if Slots() != Workers()+1 {
		t.Fatalf("Slots() = %d, want Workers()+1", Slots())
	}
	if MorselSize() != DefaultMorselSize {
		t.Fatalf("MorselSize() = %d, want %d", MorselSize(), DefaultMorselSize)
	}
}

func TestSetWorkersAndMorselSize(t *testing.T) {
	defer SetWorkers(0)
	defer SetMorselSize(0)
	SetWorkers(3)
	if Workers() != 3 || Slots() != 4 {
		t.Fatalf("Workers/Slots = %d/%d, want 3/4", Workers(), Slots())
	}
	SetMorselSize(64)
	if MorselSize() != 64 {
		t.Fatalf("MorselSize = %d", MorselSize())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetWorkers did not restore default")
	}
}

func TestMorsels(t *testing.T) {
	cases := []struct{ total, morsel, want int }{
		{0, 64, 0}, {-3, 64, 0}, {1, 64, 1}, {64, 64, 1}, {65, 64, 2},
		{1000, 64, 16}, {10, 0, 1},
	}
	for _, c := range cases {
		if got := Morsels(c.total, c.morsel); got != c.want {
			t.Errorf("Morsels(%d, %d) = %d, want %d", c.total, c.morsel, got, c.want)
		}
	}
}

// TestRunCoversEveryPosition checks that a multi-morsel job touches each
// position exactly once and that every reported slot is in range.
func TestRunCoversEveryPosition(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const total, morsel = 10_000, 64
	slots := Slots()
	seen := make([]int32, total)
	var badSlot atomic.Int32
	Run(total, morsel, slots, func(slot, from, to int) {
		if slot < 0 || slot >= slots {
			badSlot.Store(int32(slot) + 1)
		}
		for i := from; i < to; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if s := badSlot.Load(); s != 0 {
		t.Fatalf("out-of-range slot %d", s-1)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("position %d executed %d times", i, n)
		}
	}
}

// TestRunSingleMorselInline checks the fast path: a job no larger than
// one morsel runs on the caller's goroutine in the submitter slot.
func TestRunSingleMorselInline(t *testing.T) {
	slots := Slots()
	var calls int
	var gotSlot int
	Run(150, DefaultMorselSize, slots, func(slot, from, to int) {
		calls++
		gotSlot = slot
		if from != 0 || to != 150 {
			t.Fatalf("range [%d,%d), want [0,150)", from, to)
		}
	})
	if calls != 1 || gotSlot != slots-1 {
		t.Fatalf("calls=%d slot=%d, want 1 call in submitter slot %d", calls, gotSlot, slots-1)
	}
}

// TestConcurrentJobsShareThePool hammers the pool with overlapping
// multi-morsel jobs from many goroutines.
func TestConcurrentJobsShareThePool(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	const queries = 24
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			total := 1_000 + q*97
			var sum atomic.Int64
			slots := Slots()
			Run(total, 32, slots, func(_, from, to int) {
				var s int64
				for i := from; i < to; i++ {
					s += int64(i)
				}
				sum.Add(s)
			})
			want := int64(total) * int64(total-1) / 2
			if sum.Load() != want {
				t.Errorf("query %d: sum=%d want %d", q, sum.Load(), want)
			}
		}(q)
	}
	wg.Wait()
}

// TestResizeUnderLoad shrinks and grows the pool while jobs run;
// in-flight jobs keep their slot bound so no slot ever exceeds it.
func TestResizeUnderLoad(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 5, 3, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetWorkers(sizes[i%len(sizes)])
			}
		}
	}()
	for round := 0; round < 200; round++ {
		slots := Slots()
		var n atomic.Int64
		Run(4_096, 64, slots, func(slot, from, to int) {
			if slot < 0 || slot >= slots {
				panic("slot out of bound")
			}
			n.Add(int64(to - from))
		})
		if n.Load() != 4_096 {
			t.Fatalf("round %d: covered %d positions", round, n.Load())
		}
	}
	close(stop)
	wg.Wait()
}

func TestPositionBufferRecycling(t *testing.T) {
	b := GetPositions()
	if len(b) != 0 {
		t.Fatalf("GetPositions len = %d", len(b))
	}
	b = append(b, 7, 8, 9)
	PutPositions(b)
	c := GetPositions()
	if len(c) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(c))
	}
	PutPositions(c)
	PutPositions(nil) // zero-cap buffers are dropped, not pooled
}

func TestFloatScratchZeroed(t *testing.T) {
	s := GetFloat64s(8)
	for i := range s {
		s[i] = float64(i) + 0.5
	}
	PutFloat64s(s)
	r := GetFloat64s(8)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled scratch not zeroed at %d: %v", i, v)
		}
	}
	PutFloat64s(r)
	big := GetFloat64s(1 << 12)
	if len(big) != 1<<12 {
		t.Fatalf("grow: len=%d", len(big))
	}
	for _, v := range big {
		if v != 0 {
			t.Fatal("grown scratch not zeroed")
		}
	}
	PutFloat64s(big)
}
