// Package pool is the process-wide morsel-driven executor behind
// exec.MorselDriven.
//
// The paper's Figure-2 panels show the 8-thread blockwise policy losing
// on small inputs because per-query thread management dominates (§II-B).
// This package removes that per-query cost: a fixed set of resident
// workers (sized from runtime.GOMAXPROCS, overridable) consumes
// fixed-size morsels (~16K positions) from per-query work queues.
// Workers scan the active queues round-robin, offset by their worker id,
// so an idle worker steals morsels from whichever query still has work —
// skewed fragments no longer idle workers the way static blockwise
// ranges do.
//
// Submitting goroutines participate: a query's own goroutine drains its
// queue alongside the pool workers, so progress never depends on a pool
// worker being free and a single-morsel job runs inline with no
// scheduling at all. Partial-result state is indexed by slot: pool
// workers own slots 0..slots-2 and the submitter owns slot slots-1,
// where slots is the value of Slots() the caller sized its buffers with.
//
// The package also owns the sync.Pool buffer recycling that makes
// steady-state operator calls allocation-free: position-list buffers
// (GetPositions/PutPositions) and zeroed float64 scratch slices
// (GetFloat64s/PutFloat64s).
//
// The pool reports itself to internal/obs: jobs run inline vs submitted,
// morsels claimed by the submitter vs stolen by resident workers,
// cross-query picks, queue depth, live workers, and worker wake latency.
// All hot-path updates are uncontended atomic adds, amortized to O(1)
// per job.
package pool

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/obs"
)

// Pool metrics (process-global, matching the pool itself). Handles are
// registered once; hot-path updates are single atomic adds, and the
// per-morsel counters are accumulated locally per drain loop so a job
// costs O(1) metric updates, not O(morsels).
var (
	mJobsInline       = obs.NewCounter("pool.jobs_inline")       // ran on the caller, no scheduling
	mJobsSubmitted    = obs.NewCounter("pool.jobs_submitted")    // enqueued on the shared pool
	mMorselsSubmitter = obs.NewCounter("pool.morsels_submitter") // claimed by the submitting goroutine
	mMorselsStolen    = obs.NewCounter("pool.morsels_stolen")    // claimed by resident pool workers
	mCrossQueryPicks  = obs.NewCounter("pool.cross_query_picks") // worker picked a queue while several were active
	gQueueDepth       = obs.NewGauge("pool.queue_depth")         // active per-query queues
	gWorkers          = obs.NewGauge("pool.workers")             // live resident workers
	hWake             = obs.NewHistogram("pool.worker_wake_ns")  // submit → first pool-worker claim
)

// DefaultMorselSize is the number of positions per morsel. Following
// morsel-driven scheduling (HyPer), it is large enough to amortize the
// dispatch cost and small enough that skew rebalances across workers.
const DefaultMorselSize = 16 << 10

// job is one query operator's work queue: a contiguous position space
// [0, total) carved into fixed-size morsels, claimed with an atomic
// cursor.
type job struct {
	total  int
	morsel int
	slots  int // partial-state slots the submitter allocated
	fn     func(slot, from, to int)

	next int64 // next unclaimed position (atomic)
	done int64 // completed positions (atomic)
	fin  chan struct{}

	enq    time.Time   // when the job was enqueued (wake-latency base)
	picked atomic.Bool // a pool worker has claimed from this job
}

// claim reserves the next morsel; from >= to means the queue is drained.
func (j *job) claim() (from, to int) {
	n := atomic.AddInt64(&j.next, int64(j.morsel))
	from = int(n) - j.morsel
	if from >= j.total {
		return j.total, j.total
	}
	to = from + j.morsel
	if to > j.total {
		to = j.total
	}
	return from, to
}

// complete records n finished positions and signals the submitter once
// the whole job has executed.
func (j *job) complete(n int) {
	if atomic.AddInt64(&j.done, int64(n)) == int64(j.total) {
		close(j.fin)
	}
}

// drained reports whether every morsel has been claimed (not necessarily
// finished).
func (j *job) drained() bool {
	return atomic.LoadInt64(&j.next) >= int64(j.total)
}

var (
	mu      sync.Mutex
	cond    = sync.NewCond(&mu)
	jobs    []*job // active per-query queues
	running int    // live worker goroutines; ids are dense 0..running-1
	rr      int    // rotates the scan start so queues share workers fairly

	workerTarget atomic.Int32 // 0 = runtime.GOMAXPROCS(0)
	morselSize   atomic.Int32 // 0 = DefaultMorselSize
)

// Workers returns the pool size. It defaults to runtime.GOMAXPROCS(0)
// and can be overridden with SetWorkers.
func Workers() int {
	if t := workerTarget.Load(); t > 0 {
		return int(t)
	}
	return runtime.GOMAXPROCS(0)
}

// Slots returns the number of partial-result slots an operator must
// allocate before calling Run: one per pool worker plus one for the
// submitting goroutine, which drains its own queue rather than idling.
func Slots() int { return Workers() + 1 }

// RunningWorkers returns the number of live resident worker goroutines.
// It trails Workers() briefly while supernumerary workers retire after a
// shrink; after SetWorkers grows the pool the new workers are started
// eagerly, so it reaches the target before SetWorkers returns.
func RunningWorkers() int {
	mu.Lock()
	defer mu.Unlock()
	return running
}

// MaxWorkers is the hard ceiling on the pool size. The target used to be
// truncated int → int32, so a value above math.MaxInt32 could wrap to a
// negative and silently revert the pool to its GOMAXPROCS default; now
// out-of-range values saturate. The ceiling is deliberately far below
// MaxInt32: workers are resident goroutines started eagerly on growth,
// and no machine this runs on schedules more than a few hundred hardware
// threads.
const MaxWorkers = 1 << 10

// SetWorkers resizes the pool; n < 1 restores the GOMAXPROCS default and
// n > MaxWorkers clamps to MaxWorkers (never wraps). In-flight jobs keep
// the slot bound they were submitted with, so resizing is safe while
// queries run — on growth the new workers start eagerly (jobs already
// submitted against the larger Slots() value can use them immediately,
// without waiting for another Run to arrive), and on shrink
// supernumerary workers retire lazily and never touch a job whose slot
// bound excludes them.
func SetWorkers(n int) {
	switch {
	case n < 1:
		workerTarget.Store(0)
	case n > MaxWorkers:
		workerTarget.Store(MaxWorkers)
	default:
		workerTarget.Store(int32(n))
	}
	mu.Lock()
	ensureLocked()   // grow eagerly; in-flight jobs see the new workers
	cond.Broadcast() // wake idle workers so extras retire promptly
	mu.Unlock()
}

// MorselSize returns the positions-per-morsel granularity used by exec.
func MorselSize() int {
	if m := morselSize.Load(); m > 0 {
		return int(m)
	}
	return DefaultMorselSize
}

// SetMorselSize overrides the morsel granularity; n < 1 restores the
// default and values above math.MaxInt32 clamp to math.MaxInt32 instead
// of wrapping to a negative (which would silently revert the granularity
// to its default). Tests shrink it to force multi-morsel scheduling on
// small inputs.
func SetMorselSize(n int) {
	switch {
	case n < 1:
		morselSize.Store(0)
	case n > math.MaxInt32:
		morselSize.Store(math.MaxInt32)
	default:
		morselSize.Store(int32(n))
	}
}

// Morsels returns how many morsels of the given size cover total
// positions.
func Morsels(total, morsel int) int {
	if total <= 0 {
		return 0
	}
	if morsel < 1 {
		morsel = DefaultMorselSize
	}
	return (total + morsel - 1) / morsel
}

// Run executes fn over the position space [0, total) in morsels of the
// given size, on the shared pool plus the calling goroutine, and returns
// when every position has been processed. fn receives the claimed range
// and the worker's partial-state slot in [0, slots); the caller passes
// the Slots() value it sized its partial buffers with, and pool workers
// outside that bound skip the job. A job no larger than one morsel runs
// inline on the caller with no scheduling.
func Run(total, morsel, slots int, fn func(slot, from, to int)) {
	if total <= 0 {
		return
	}
	if morsel < 1 {
		morsel = DefaultMorselSize
	}
	if slots < 1 {
		slots = 1
	}
	if total <= morsel || slots == 1 {
		mJobsInline.Inc()
		fn(slots-1, 0, total)
		return
	}
	j := &job{total: total, morsel: morsel, slots: slots, fn: fn, fin: make(chan struct{}), enq: time.Now()}
	mJobsSubmitted.Inc()
	mu.Lock()
	ensureLocked()
	jobs = append(jobs, j)
	gQueueDepth.Set(int64(len(jobs)))
	cond.Broadcast()
	mu.Unlock()
	// Morsel-driven: the submitter is a worker too. It drains its own
	// queue, then waits only for morsels claimed by pool workers.
	mine := int64(0)
	for {
		from, to := j.claim()
		if from >= to {
			break
		}
		mine++
		fn(slots-1, from, to)
		j.complete(to - from)
	}
	mMorselsSubmitter.Add(mine)
	mu.Lock()
	removeLocked(j)
	mu.Unlock()
	<-j.fin
}

// ensureLocked lazily starts workers up to the current target. Worker
// ids stay dense because workers only retire from the top of the id
// range.
func ensureLocked() {
	for running < Workers() {
		go worker(running)
		running++
	}
	gWorkers.Set(int64(running))
}

// removeLocked drops a drained job from the active list; both the
// submitter and the draining worker may race to remove it, so it is
// idempotent.
func removeLocked(j *job) {
	for i, a := range jobs {
		if a == j {
			jobs = append(jobs[:i], jobs[i+1:]...)
			gQueueDepth.Set(int64(len(jobs)))
			return
		}
	}
}

// pickLocked chooses an active queue for a worker, rotating the start
// index so concurrent queries share the pool instead of the first
// registered queue monopolizing it. Jobs whose slot bound excludes this
// worker are skipped.
func pickLocked(id int) *job {
	if len(jobs) == 0 {
		return nil
	}
	rr++
	for i := 0; i < len(jobs); i++ {
		j := jobs[(rr+id+i)%len(jobs)]
		if id < j.slots-1 && !j.drained() {
			if len(jobs) > 1 {
				// The worker had several live queries to choose from:
				// cross-query sharing is actually happening.
				mCrossQueryPicks.Inc()
			}
			return j
		}
	}
	return nil
}

// worker is one resident pool goroutine. It sleeps on the condition
// variable when no queue has work, and retires (top id first, keeping
// ids dense) when the pool shrinks.
func worker(id int) {
	mu.Lock()
	for {
		if running > Workers() && id == running-1 {
			running--
			gWorkers.Set(int64(running))
			cond.Broadcast() // let the next supernumerary id retire
			mu.Unlock()
			return
		}
		j := pickLocked(id)
		if j == nil {
			cond.Wait()
			continue
		}
		mu.Unlock()
		if !j.picked.Swap(true) {
			hWake.ObserveSince(j.enq)
		}
		stolen := int64(0)
		for {
			from, to := j.claim()
			if from >= to {
				break
			}
			stolen++
			j.fn(id, from, to)
			j.complete(to - from)
		}
		mMorselsStolen.Add(stolen)
		mu.Lock()
		removeLocked(j)
	}
}

// ---------------------------------------------------------------------------
// Recycled buffers. Operators return these after merging partials, so
// steady-state calls are allocation-free on the hot path.

var positionsPool = sync.Pool{New: func() any {
	s := make([]uint64, 0, 1024)
	return &s
}}

// GetPositions returns an empty position-list buffer with whatever
// capacity a previous query left behind.
func GetPositions() []uint64 {
	return (*positionsPool.Get().(*[]uint64))[:0]
}

// GetPositionsCap returns an empty position-list buffer with capacity
// for at least n entries. A fetched buffer that is too small goes back
// to the pool for smaller callers — the same re-pool discipline as
// GetFloat64s — so sizing up never strands the small buffer.
func GetPositionsCap(n int) []uint64 {
	s := GetPositions()
	if cap(s) < n {
		PutPositions(s)
		return make([]uint64, 0, n)
	}
	return s
}

// PutPositions recycles a position-list buffer. The contents become
// invalid; callers must copy results out first.
func PutPositions(s []uint64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	positionsPool.Put(&s)
}

var floatsPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 16)
	return &s
}}

// GetFloat64s returns a zeroed float64 scratch slice of length n —
// per-slot partial sums, counts, or extrema.
func GetFloat64s(n int) []float64 {
	s := *floatsPool.Get().(*[]float64)
	if cap(s) < n {
		// Too small for this slot count: put it back for smaller callers
		// and allocate at the requested size. The grown slice joins the
		// pool on PutFloat64s, so repeated large-slot queries allocate
		// once instead of churning (the fetched buffer used to be
		// dropped on the floor here, leaking it from the pool).
		PutFloat64s(s)
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutFloat64s recycles a scratch slice from GetFloat64s.
func PutFloat64s(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatsPool.Put(&s)
}

var bytesPool = sync.Pool{New: func() any {
	s := make([]byte, 0, 4096)
	return &s
}}

// GetBytes returns an empty byte buffer with whatever capacity a
// previous user left behind — response serialization and request
// decoding in the serving layer run allocation-free at steady state by
// appending into these.
func GetBytes() []byte {
	return (*bytesPool.Get().(*[]byte))[:0]
}

// GetBytesCap returns an empty byte buffer with capacity for at least n
// bytes, with the same re-pool-if-too-small discipline as GetFloat64s:
// an undersized fetch goes back for smaller callers and the grown
// replacement joins the pool on PutBytes.
func GetBytesCap(n int) []byte {
	s := GetBytes()
	if cap(s) < n {
		PutBytes(s)
		return make([]byte, 0, n)
	}
	return s
}

// PutBytes recycles a byte buffer. The contents become invalid; callers
// must finish writing the bytes out first.
func PutBytes(s []byte) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	bytesPool.Put(&s)
}
