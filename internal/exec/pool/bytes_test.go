package pool

import (
	"sync"
	"testing"
)

// TestGetBytesRecycles checks the round trip: a returned buffer's
// capacity is visible to a later caller, and GetBytes always hands back
// an empty slice.
func TestGetBytesRecycles(t *testing.T) {
	b := GetBytesCap(1 << 15)
	if len(b) != 0 {
		t.Fatalf("GetBytesCap returned non-empty slice: len=%d", len(b))
	}
	if cap(b) < 1<<15 {
		t.Fatalf("GetBytesCap(%d) cap = %d", 1<<15, cap(b))
	}
	b = append(b, make([]byte, 1<<15)...)
	PutBytes(b)
	for i := 0; i < 64; i++ {
		r := GetBytes()
		if len(r) != 0 {
			t.Fatalf("recycled buffer not reset: len=%d", len(r))
		}
		if cap(r) >= 1<<15 {
			return // got the big one back
		}
		PutBytes(r)
	}
	t.Skip("recycled buffer not observed (GC or parallel test interference); nothing to assert")
}

// TestGetBytesCapRepoolsOnGrow pins the re-pool discipline shared with
// GetFloat64s: an undersized fetch is returned for smaller callers
// rather than dropped.
func TestGetBytesCapRepoolsOnGrow(t *testing.T) {
	for i := 0; i < 64; i++ {
		PutBytes(make([]byte, 0, 7))
		PutBytes(GetBytesCap(1 << 16)) // fetches the cap-7 buffer, must re-pool it
		if cap(GetBytes()) == 7 {
			return
		}
	}
	t.Fatal("too-small byte buffers are dropped by GetBytesCap instead of re-pooled")
}

// TestBytesPoolConcurrent hammers the byte pool from many goroutines
// under -race.
func TestBytesPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := GetBytesCap(128 + int(seed)*64)
				for j := 0; j < 128; j++ {
					b = append(b, seed)
				}
				for j := 0; j < 128; j++ {
					if b[j] != seed {
						t.Errorf("buffer shared while in use: got %d want %d", b[j], seed)
						return
					}
				}
				PutBytes(b)
			}
		}(byte(w + 1))
	}
	wg.Wait()
}
