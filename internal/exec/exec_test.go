package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
)

func host() *mem.Allocator { return mem.NewAllocator(mem.Host, 0) }

func itemSchema() *schema.Schema {
	return schema.MustNew(
		schema.Int64Attr("id"),
		schema.Int32Attr("warehouse"),
		schema.CharAttr("name", 8),
		schema.Float64Attr("price"),
	)
}

// buildLayout fills a layout in the given shape with n rows where
// price(i) = i%101 + 0.25 and id(i) = i.
func buildLayout(t *testing.T, lin layout.Linearization, vertical bool, n uint64) (*layout.Layout, float64) {
	t.Helper()
	s := itemSchema()
	var l *layout.Layout
	var err error
	if vertical {
		l, err = layout.Vertical(host(), "col", s, [][]int{{0}, {1}, {2}, {3}}, n,
			func([]int) layout.Linearization { return layout.Direct })
	} else {
		l, err = layout.Horizontal(host(), "row", s, n, n, lin)
	}
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := uint64(0); i < n; i++ {
		price := float64(i%101) + 0.25
		want += price
		rec := schema.Record{
			schema.IntValue(int64(i)),
			schema.Int32Value(int32(i % 7)),
			schema.CharValue("itm"),
			schema.FloatValue(price),
		}
		for _, f := range l.Fragments() {
			if !f.Rows().Contains(i) {
				continue
			}
			vals := make([]schema.Value, 0, f.Arity())
			for _, c := range f.Cols() {
				vals = append(vals, rec[c])
			}
			if err := f.AppendTuplet(vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l, want
}

func TestColumnViewContiguity(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 100)
	pieces, err := ColumnView(l, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 || pieces[0].Vec.Len != 100 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if pieces[0].Vec.Contiguous() {
		t.Error("NSM column view should be strided")
	}
	lv, _ := buildLayout(t, layout.Direct, true, 100)
	pieces, err = ColumnView(lv, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !pieces[0].Vec.Contiguous() {
		t.Error("DSM-emulated column view should be contiguous")
	}
}

func TestColumnViewChunked(t *testing.T) {
	s := itemSchema()
	l, err := layout.Horizontal(host(), "chunks", s, 100, 32, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		for _, f := range l.Fragments() {
			if f.Rows().Contains(i) {
				f.AppendTuplet([]schema.Value{
					schema.IntValue(int64(i)), schema.Int32Value(0),
					schema.CharValue("x"), schema.FloatValue(1),
				})
			}
		}
	}
	pieces, err := ColumnView(l, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 4 { // 32+32+32+4
		t.Fatalf("pieces = %d, want 4", len(pieces))
	}
	if pieces[3].Rows.Begin != 96 || pieces[3].Vec.Len != 4 {
		t.Fatalf("tail piece = %+v", pieces[3])
	}
	sum, err := SumInt64(Single(), pieces)
	if err != nil || sum != 99*100/2 {
		t.Fatalf("chunked sum = %d, %v", sum, err)
	}
}

func TestColumnViewGap(t *testing.T) {
	s := itemSchema()
	l := layout.NewLayout("gap", s)
	f, _ := layout.NewFragment(host(), s, layout.AllCols(s), layout.RowRange{Begin: 0, End: 10}, layout.NSM)
	l.Add(f)
	// Fragment allocated for 10 rows but only 5 filled: view must not
	// read unfilled slots.
	for i := 0; i < 5; i++ {
		f.AppendTuplet([]schema.Value{
			schema.IntValue(int64(i)), schema.Int32Value(0),
			schema.CharValue("x"), schema.FloatValue(1),
		})
	}
	if _, err := ColumnView(l, 0, 10); !errors.Is(err, ErrGap) {
		t.Fatalf("unfilled view err = %v, want ErrGap", err)
	}
	pieces, err := ColumnView(l, 0, 5)
	if err != nil || totalLen(pieces) != 5 {
		t.Fatalf("filled prefix view: %v, len %d", err, totalLen(pieces))
	}
	// Entirely missing rows.
	if _, err := ColumnView(l, 0, 20); !errors.Is(err, ErrGap) {
		t.Fatalf("uncovered view err = %v", err)
	}
}

func TestSumFloat64AllPolicies(t *testing.T) {
	for _, vertical := range []bool{false, true} {
		l, want := buildLayout(t, layout.NSM, vertical, 1000)
		pieces, err := ColumnView(l, 3, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{Single(), Multi(), MultiN(3), Morsel()} {
			got, err := SumFloat64(cfg, pieces)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("vertical=%v cfg=%v: sum = %v, want %v", vertical, cfg.Policy, got, want)
			}
		}
	}
}

func TestSumInt64AllPolicies(t *testing.T) {
	l, _ := buildLayout(t, layout.DSM, false, 777)
	pieces, err := ColumnView(l, 0, 777)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(776 * 777 / 2)
	for _, cfg := range []Config{Single(), Multi(), MultiN(8), Morsel()} {
		got, err := SumInt64(cfg, pieces)
		if err != nil || got != want {
			t.Fatalf("sum = %d, %v; want %d", got, err, want)
		}
	}
}

func TestSumRejectsWrongWidth(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 10)
	pieces, _ := ColumnView(l, 1, 10) // int32 column
	if _, err := SumFloat64(Single(), pieces); !errors.Is(err, ErrBadColumn) {
		t.Errorf("float sum err = %v", err)
	}
	if _, err := SumInt64(Single(), pieces); !errors.Is(err, ErrBadColumn) {
		t.Errorf("int sum err = %v", err)
	}
	if _, err := SelectFloat64(Single(), pieces, func(float64) bool { return true }); !errors.Is(err, ErrBadColumn) {
		t.Errorf("select err = %v", err)
	}
	if _, err := CountFloat64(Single(), pieces, func(float64) bool { return true }); !errors.Is(err, ErrBadColumn) {
		t.Errorf("count err = %v", err)
	}
	if _, _, _, err := MinMaxFloat64(Single(), pieces); !errors.Is(err, ErrBadColumn) {
		t.Errorf("minmax err = %v", err)
	}
	if _, err := SelectInt64(Single(), pieces, func(int64) bool { return true }); !errors.Is(err, ErrBadColumn) {
		t.Errorf("select int err = %v", err)
	}
}

func TestMaterialize(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 500)
	positions := []uint64{0, 42, 499}
	for _, cfg := range []Config{Single(), MultiN(8), Morsel()} {
		recs, err := Materialize(cfg, l, positions)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3 {
			t.Fatalf("materialized %d", len(recs))
		}
		for i, pos := range positions {
			if recs[i][0].I != int64(pos) {
				t.Errorf("rec %d id = %d, want %d", i, recs[i][0].I, pos)
			}
		}
	}
	if _, err := Materialize(Single(), l, []uint64{1000}); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := Materialize(Multi(), l, []uint64{0, 1000}); err == nil {
		t.Error("multi-threaded out-of-range position accepted")
	}
}

func TestSelectFloat64(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 300)
	pieces, _ := ColumnView(l, 3, 300)
	for _, cfg := range []Config{Single(), MultiN(8), Morsel()} {
		pos, err := SelectFloat64(cfg, pieces, func(x float64) bool { return x < 1 })
		if err != nil {
			t.Fatal(err)
		}
		// price(i) = i%101 + 0.25 < 1 ⟺ i%101 == 0 → i ∈ {0,101,202}.
		want := []uint64{0, 101, 202}
		if len(pos) != len(want) {
			t.Fatalf("cfg=%v positions = %v", cfg.Policy, pos)
		}
		for i := range want {
			if pos[i] != want[i] {
				t.Fatalf("cfg=%v positions = %v, want %v", cfg.Policy, pos, want)
			}
		}
	}
}

func TestSelectInt64AndCount(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 100)
	idPieces, _ := ColumnView(l, 0, 100)
	pos, err := SelectInt64(Single(), idPieces, func(x int64) bool { return x%10 == 0 })
	if err != nil || len(pos) != 10 {
		t.Fatalf("SelectInt64 = %v, %v", pos, err)
	}
	prices, _ := ColumnView(l, 3, 100)
	n, err := CountFloat64(Single(), prices, func(x float64) bool { return x > 50 })
	if err != nil {
		t.Fatal(err)
	}
	// price(i) = i%101 + 0.25 > 50 ⟺ i%101 >= 50 → i ∈ {50..99}: 50 rows.
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
}

func TestMinMaxFloat64(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 150)
	prices, _ := ColumnView(l, 3, 150)
	min, max, ok, err := MinMaxFloat64(Single(), prices)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if min != 0.25 || max != 100.25 {
		t.Fatalf("min/max = %v/%v", min, max)
	}
	_, _, ok, err = MinMaxFloat64(Single(), nil)
	if err != nil || ok {
		t.Fatal("empty view should report ok=false")
	}
}

func TestVolcanoIterator(t *testing.T) {
	l, want := buildLayout(t, layout.NSM, false, 200)
	it := NewRowIterator(l, 200)
	got, err := SumFloat64Volcano(it, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("volcano sum = %v, want %v", got, want)
	}
	it.Reset()
	rec, err := it.Next()
	if err != nil || rec[0].I != 0 {
		t.Fatalf("after Reset: %v, %v", rec, err)
	}
}

func TestSimulatedTimeCharging(t *testing.T) {
	l, _ := buildLayout(t, layout.Direct, true, 10_000)
	pieces, _ := ColumnView(l, 3, 10_000)
	var clk perfmodel.Clock
	cfg := Config{Policy: SingleThreaded, Host: perfmodel.DefaultHost(), Clock: &clk}
	if _, err := SumFloat64(cfg, pieces); err != nil {
		t.Fatal(err)
	}
	if clk.ElapsedNs() <= 0 {
		t.Fatal("no simulated time charged")
	}
	single := clk.ElapsedNs()
	clk.Reset()
	cfg.Policy, cfg.Threads = MultiThreaded, 8
	if _, err := SumFloat64(cfg, pieces); err != nil {
		t.Fatal(err)
	}
	multi := clk.ElapsedNs()
	// 10k rows is tiny: thread management must dominate (paper finding i).
	if multi <= single {
		t.Errorf("tiny input: multi %.0f <= single %.0f ns", multi, single)
	}
	// Materialization charging.
	clk.Reset()
	if _, err := Materialize(Config{Policy: SingleThreaded, Host: perfmodel.DefaultHost(), Clock: &clk}, l, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if clk.ElapsedNs() <= 0 {
		t.Error("materialize charged no time")
	}
}

func TestPolicyString(t *testing.T) {
	if SingleThreaded.String() != "single-threaded" || MultiThreaded.String() != "multi-threaded" ||
		MorselDriven.String() != "morsel-driven" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy String empty")
	}
}

// Property: for random row counts and thread counts, the parallel sum
// equals the sequential sum on the same layout.
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed int64, nRaw uint16, threadsRaw uint8, vertical bool) bool {
		n := uint64(nRaw)%3000 + 1
		threads := int(threadsRaw)%15 + 2
		r := rand.New(rand.NewSource(seed))
		s := itemSchema()
		var l *layout.Layout
		var err error
		if vertical {
			l, err = layout.Vertical(host(), "v", s, [][]int{{0}, {1}, {2}, {3}}, n,
				func([]int) layout.Linearization { return layout.Direct })
		} else {
			chunk := n/3 + 1
			l, err = layout.Horizontal(host(), "h", s, n, chunk, layout.NSM)
		}
		if err != nil {
			return false
		}
		for i := uint64(0); i < n; i++ {
			rec := schema.Record{
				schema.IntValue(r.Int63n(1000)), schema.Int32Value(0),
				schema.CharValue("x"), schema.FloatValue(math.Floor(r.Float64() * 100)),
			}
			for _, f := range l.Fragments() {
				if !f.Rows().Contains(i) {
					continue
				}
				vals := make([]schema.Value, 0, f.Arity())
				for _, c := range f.Cols() {
					vals = append(vals, rec[c])
				}
				if f.AppendTuplet(vals) != nil {
					return false
				}
			}
		}
		pieces, err := ColumnView(l, 3, n)
		if err != nil {
			return false
		}
		seq, err1 := SumFloat64(Single(), pieces)
		par, err2 := SumFloat64(Config{Policy: MultiThreaded, Threads: threads}, pieces)
		return err1 == nil && err2 == nil && math.Abs(seq-par) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
