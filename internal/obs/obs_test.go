package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	if c.Inc() != 1 || c.Add(4) != 5 || c.Load() != 5 {
		t.Fatalf("counter sequence wrong: %d", c.Load())
	}
	if r.Counter("a.b") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("q")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 50, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 fast observations (~100ns) and 10 slow ones (~1ms).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if h.Count() != 100 || h.Sum() != 90*100+10*1_000_000 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.Max() != 1_000_000 {
		t.Fatalf("max = %d", h.Max())
	}
	// Power-of-two buckets: answers are exact within 2x.
	if p50 := h.Quantile(0.5); p50 < 100 || p50 > 256 {
		t.Fatalf("p50 = %d, want ~128", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 1_000_000 || p99 > 2_097_152 {
		t.Fatalf("p99 = %d, want ~1<<20", p99)
	}
	h.reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if g.Load() != workers*per {
		t.Fatalf("gauge = %d", g.Load())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestSpansAndEvents(t *testing.T) {
	defer Reset()
	Reset()
	f := NewSpanFamily("test.op")
	s := f.Start()
	time.Sleep(time.Millisecond)
	s.EndWith("groups=[[0 1] [2]]")
	Span{}.End() // zero span is inert

	RecordEvent("test.decision", "placed col 4")
	snap := TakeSnapshot()
	hs, ok := snap.Histograms["span.test.op.ns"]
	if !ok || hs.Count != 1 || hs.MaxNs < int64(time.Millisecond) {
		t.Fatalf("span histogram missing or wrong: %+v", hs)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Detail != "groups=[[0 1] [2]]" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if len(snap.Events) != 1 || snap.Events[0].Name != "test.decision" {
		t.Fatalf("events = %+v", snap.Events)
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < ringCap*3; i++ {
		r.RecordEvent("e", "x")
	}
	if got := len(r.Snapshot().Events); got != ringCap {
		t.Fatalf("event ring holds %d, want %d", got, ringCap)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("keep")
	c.Add(9)
	r.Reset()
	if c.Load() != 0 {
		t.Fatal("reset did not zero the counter")
	}
	c.Inc()
	if r.Snapshot().Counter("keep") != 1 {
		t.Fatal("handle detached from registry after reset")
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.count").Add(3)
	r.Gauge("x.depth").Set(2)
	r.Histogram("x.ns").Observe(500)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Counters["x.count"] != 3 || decoded.Gauges["x.depth"] != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Histograms["x.ns"].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", decoded.Histograms["x.ns"])
	}
}

func TestSnapshotNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Counter("m")
	counters, _, _ := r.Snapshot().Names()
	if len(counters) != 3 || counters[0] != "a" || counters[2] != "z" {
		t.Fatalf("names = %v", counters)
	}
}

// BenchmarkCounterAdd documents the hot-path cost of one metric update —
// the number DESIGN.md Section 6 quotes for instrumentation overhead.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve documents the cost of one latency sample.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

// BenchmarkCounterAddParallel shows contended update cost (many workers
// hammering one counter, the pool steal-counter worst case).
func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
