package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramSnapshotNeverTorn hammers one histogram from many writers
// while a reader snapshots continuously, asserting every snapshot is
// internally consistent: Count == sum of the bucket populations used for
// the quantiles (checked indirectly via monotonicity and the final
// total), Sum/Max plausible for the observed values, and Count never
// goes backwards between snapshots.
func TestHistogramSnapshotNeverTorn(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 20000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 12345
			for i := 0; i < perW; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(int64(x % 5000)) // mixes bucket 0..13
			}
		}(int64(w + 1))
	}

	var prevCount int64
	snaps := 0
	for !stop.Load() {
		s := h.Snapshot()
		if s.Count < prevCount {
			t.Fatalf("snapshot count went backwards: %d -> %d", prevCount, s.Count)
		}
		prevCount = s.Count
		if s.Count > 0 {
			if s.P50Ns == 0 {
				t.Fatalf("count=%d but p50=0: quantiles torn from count", s.Count)
			}
			if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
				t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", s.P50Ns, s.P95Ns, s.P99Ns)
			}
			if s.SumNs < 0 || s.SumNs > s.Count*5000 {
				t.Fatalf("sum %d implausible for count %d of values <5000", s.SumNs, s.Count)
			}
			if s.MaxNs >= 5000 {
				t.Fatalf("max %d beyond any observed value", s.MaxNs)
			}
		}
		snaps++
		if snaps%64 == 0 {
			// Give writers a chance on single-core runners.
			select {
			default:
			}
		}
		// Exit once writers finished AND we've taken a final snapshot.
		if h.Count() == writers*perW {
			stop.Store(true)
		}
	}
	wg.Wait()
	final := h.Snapshot()
	if final.Count != writers*perW {
		t.Fatalf("final count = %d, want %d", final.Count, writers*perW)
	}
}

// TestSnapshotDuringScanPairing emulates the serve-path metric
// convention — Observe the latency histogram, then Inc the paired ops
// counter — and asserts no snapshot ever shows a counted op whose
// latency observation is missing (counter > histogram count would mean a
// torn pair).
func TestSnapshotDuringScanPairing(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("scan.ops")
	lat := r.Histogram("scan.ns")

	const (
		writers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	wg.Add(writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			<-start
			for i := 0; i < perW; i++ {
				lat.Observe(seed + int64(i)%257)
				ops.Inc()
			}
		}(int64(w + 1))
	}
	close(start)

	for {
		s := r.Snapshot()
		c := s.Counter("scan.ops")
		hc := s.Histograms["scan.ns"].Count
		if hc < c {
			t.Fatalf("torn pair: counter=%d but histogram count=%d", c, hc)
		}
		if c == writers*perW {
			break
		}
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Histograms["scan.ns"].Count; got != writers*perW {
		t.Fatalf("final histogram count = %d, want %d", got, writers*perW)
	}
}

// TestWriteJSONUnderLoad hammers WriteJSON itself (the WriteMetricsJSON
// backing) during concurrent observes and checks each emitted document
// parses and carries consistent pairs.
func TestWriteJSONUnderLoad(t *testing.T) {
	r := NewRegistry()
	ops := r.Counter("exec.sum.ops")
	lat := r.Histogram("exec.sum.ns")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer wg.Done()
			i := int64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				lat.Observe(seed*100 + i%1000)
				ops.Inc()
				i++
			}
		}(int64(w + 1))
	}

	for round := 0; round < 200; round++ {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var s Snapshot
		if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
			t.Fatalf("round %d: emitted JSON does not parse: %v", round, err)
		}
		if c, hc := s.Counter("exec.sum.ops"), s.Histograms["exec.sum.ns"].Count; hc < c {
			t.Fatalf("round %d: torn counter/histogram pair: ops=%d latencies=%d", round, c, hc)
		}
	}
	close(done)
	wg.Wait()
}
