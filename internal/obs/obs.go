// Package obs is the process-wide observability layer: an allocation-free
// metrics registry (atomic counters, gauges, fixed-bucket nanosecond
// histograms), lightweight span tracing, and a bounded event log, with a
// Snapshot/JSON export.
//
// The paper's core finding (Section II-B, Figure 2) is that no storage
// configuration dominates a hybrid workload; the responsive adaptability
// it proposes (Section IV-C) therefore needs the engine to continuously
// measure itself — queue depth, steal rate, transfer bytes, conflict
// rate, layout-reorg events — and every placement decision between host
// and device hinges on exactly these numbers. This package is where all
// subsystems (exec/pool, exec operators, device, tx, core) report them.
//
// Design constraints, in order:
//
//  1. Near-free on the hot path. Metric handles are package-level vars
//     registered at init; updating one is a single uncontended atomic
//     add. Nothing on the update path takes a lock, reads the wall
//     clock, or allocates. Callers that need latencies on very hot
//     operations sample them (see exec's 1-in-64 operator sampling)
//     rather than timing every call.
//  2. Always safe. All types are safe for concurrent use; the zero
//     Counter/Gauge/Histogram is usable unregistered (the device uses
//     per-instance zero-value counters alongside the global registry).
//  3. Reset-able. Tests and harness runs scope measurements with
//     Reset(), which zeroes values but keeps registrations stable.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// reset zeroes the counter (registry Reset only; counters are otherwise
// monotone).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (queue depth, live workers).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds observations in
// [2^(i-1), 2^i) ns (bucket 0 holds zero and one). 2^47 ns ≈ 39 hours
// caps anything this engine times.
const histBuckets = 48

// Histogram is a fixed-bucket power-of-two nanosecond histogram. The
// zero value is ready to use; Observe is a few atomic adds and never
// allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a nanosecond observation to its bucket index.
func bucketFor(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0→0, 1→1, [2,4)→2, [4,8)→3 ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one nanosecond measurement.
//
// Field order matters for snapshot consistency: sum, bucket and max are
// published before count, so an observation that is visible in count is
// fully visible everywhere else. Snapshot exploits this — it re-reads
// count around the other fields and retries until the copy is stable —
// which is what keeps WriteMetricsJSON taken mid-scan from tearing a
// histogram (count without its bucket, or a bucket without its sum).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.buckets[bucketFor(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation in nanoseconds.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the bucket boundaries: the result is exact to within a factor of two.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i) // upper bucket bound
		}
	}
	return h.max.Load()
}

// Snapshot returns a self-consistent summary of the histogram even while
// other goroutines are observing into it. Consistency means the exported
// Count equals the sum of the (copied) bucket populations the quantiles
// are computed from, and SumNs covers exactly the counted observations.
//
// The implementation is an optimistic seqlock over the count field:
// Observe publishes count last, so a copy whose count reading is stable
// across the reads of sum/buckets/max — and whose bucket total equals
// that count — contains only fully published observations. Under a
// sustained write storm the loop relaxes after a bounded number of
// attempts: it keeps the requirement that quantiles be computed from the
// copied buckets (never torn against a moving count) and derives Count
// from the bucket total itself, which is the invariant downstream
// consumers rely on.
func (h *Histogram) Snapshot() HistogramSnapshot {
	const strictAttempts = 512
	var (
		sum, max int64
		b        [histBuckets]int64
		total    int64
	)
	for attempt := 0; ; attempt++ {
		c1 := h.count.Load()
		sum = h.sum.Load()
		max = h.max.Load()
		total = 0
		for i := range b {
			b[i] = h.buckets[i].Load()
			total += b[i]
		}
		c2 := h.count.Load()
		if c1 == c2 && total == c1 {
			break
		}
		if attempt >= strictAttempts {
			// Writers never went quiet; fall back to the bucket copy as
			// the source of truth so the output is still internally
			// consistent (Count == Σ buckets, quantiles from the same
			// copy), merely a moment-in-time slice of a moving target.
			break
		}
	}
	snap := HistogramSnapshot{Count: total, SumNs: sum, MaxNs: max}
	snap.P50Ns = quantileOf(b[:], total, max, 0.50)
	snap.P95Ns = quantileOf(b[:], total, max, 0.95)
	snap.P99Ns = quantileOf(b[:], total, max, 0.99)
	return snap
}

// quantileOf computes the q-quantile upper bound from a copied bucket
// array, mirroring Histogram.Quantile but over stable data.
func quantileOf(buckets []int64, total, max int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i)
		}
	}
	return max
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry is a named collection of metrics. Registration (NewCounter
// and friends) takes a lock and may allocate; the returned handles are
// then updated lock-free. Names are dotted paths, e.g. "pool.steals".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	spanMu sync.Mutex
	spans  []SpanRecord // ring, newest at the end
	events []Event      // ring, newest at the end
}

// ringCap bounds the recent-span and event rings.
const ringCap = 128

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry all subsystems report into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// NewCounter registers (or finds) a counter in the default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or finds) a gauge in the default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or finds) a histogram in the default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// Reset zeroes every metric value and clears the span/event rings, but
// keeps all registrations (handles held by subsystems stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	r.spans = nil
	r.events = nil
	r.spanMu.Unlock()
}

// Reset zeroes the default registry.
func Reset() { Default.Reset() }

// ---------------------------------------------------------------------------
// Spans and events: coarse-grained tracing for structural operations
// (adaptation, freezing, merging, device placement). Not for per-morsel
// work — ending a span takes the ring lock.

// SpanFamily names one traced operation; Start/End pairs record into a
// latency histogram plus the bounded recent-span ring.
type SpanFamily struct {
	name string
	r    *Registry
	h    *Histogram
}

// NewSpanFamily registers a span family (histogram "span.<name>.ns") in
// the default registry.
func NewSpanFamily(name string) *SpanFamily {
	return &SpanFamily{name: name, r: Default, h: Default.Histogram("span." + name + ".ns")}
}

// Span is one in-flight timed operation. The zero Span is inert (End is
// a no-op), so conditional tracing needs no nil checks.
type Span struct {
	f  *SpanFamily
	t0 time.Time
}

// Start opens a span.
func (f *SpanFamily) Start() Span { return Span{f: f, t0: time.Now()} }

// End closes the span, recording its duration.
func (s Span) End() { s.EndWith("") }

// EndWith closes the span with a detail annotation kept in the recent-
// span ring (e.g. the chosen column groups of a reorganization).
func (s Span) EndWith(detail string) {
	if s.f == nil {
		return
	}
	d := time.Since(s.t0)
	s.f.h.Observe(d.Nanoseconds())
	rec := SpanRecord{Name: s.f.name, Start: s.t0.UnixNano(), DurationNs: d.Nanoseconds(), Detail: detail}
	r := s.f.r
	r.spanMu.Lock()
	r.spans = append(r.spans, rec)
	if len(r.spans) > ringCap {
		r.spans = r.spans[len(r.spans)-ringCap:]
	}
	r.spanMu.Unlock()
}

// SpanRecord is one completed span in a snapshot.
type SpanRecord struct {
	Name       string `json:"name"`
	Start      int64  `json:"start_unix_ns"`
	DurationNs int64  `json:"duration_ns"`
	Detail     string `json:"detail,omitempty"`
}

// Event is one structural decision worth keeping (e.g. "core.adapt":
// which monitor snapshot triggered a reorg and what was chosen).
type Event struct {
	Time   int64  `json:"time_unix_ns"`
	Name   string `json:"name"`
	Detail string `json:"detail"`
}

// RecordEvent appends an event to the registry's bounded ring.
func (r *Registry) RecordEvent(name, detail string) {
	e := Event{Time: time.Now().UnixNano(), Name: name, Detail: detail}
	r.spanMu.Lock()
	r.events = append(r.events, e)
	if len(r.events) > ringCap {
		r.events = r.events[len(r.events)-ringCap:]
	}
	r.spanMu.Unlock()
}

// RecordEvent appends an event to the default registry.
func RecordEvent(name, detail string) { Default.RecordEvent(name, detail) }

// ---------------------------------------------------------------------------
// Snapshots.

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// Snapshot is a point-in-time copy of every metric, recent span and
// event. It marshals to the JSON shape htapbench embeds as its "obs"
// section.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Counter returns a snapshotted counter value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a snapshotted gauge value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot copies the registry's current state.
//
// Two consistency guarantees hold even when the snapshot is taken in the
// middle of concurrent scans:
//
//   - Each histogram summary is internally consistent (Count equals the
//     bucket population its quantiles were computed from) via
//     Histogram.Snapshot's optimistic retry.
//   - Counter/histogram pairs written in the "observe latency, then
//     increment the op counter" order (the server and exec convention)
//     never tear backwards: counters are read before histograms here, so
//     a snapshot can only see a histogram count >= its paired counter,
//     never a counted op whose latency is missing.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	s.Spans = append([]SpanRecord(nil), r.spans...)
	s.Events = append([]Event(nil), r.events...)
	r.spanMu.Unlock()
	return s
}

// TakeSnapshot copies the default registry's state.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// Names returns the sorted metric names of one kind, for deterministic
// dumps.
func (s Snapshot) Names() (counters, gauges, histograms []string) {
	for n := range s.Counters {
		counters = append(counters, n)
	}
	for n := range s.Gauges {
		gauges = append(gauges, n)
	}
	for n := range s.Histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}

// WriteJSON writes the registry snapshot as indented JSON (the
// expvar-style dump used by examples/metrics).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSON dumps the default registry.
func WriteJSON(w io.Writer) error { return Default.WriteJSON(w) }
