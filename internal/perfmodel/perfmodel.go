// Package perfmodel is a calibrated analytical time model for the compute
// platforms of the paper's experiment (Section II-B, Figure 2): a
// single-socket host CPU executing single- or multi-threaded bulk
// operators, and a discrete GPU reached over a PCIe-class bus.
//
// This container has one CPU core and no GPU, so the paper's
// multi-threaded and device series cannot be measured physically; per the
// reproduction's substitution policy (DESIGN.md Section 2), the benchmark
// harness instead *computes* the time each configuration would take from
// first principles — bandwidth, cache-line utilization, thread management
// overhead, bus latency, kernel launch overhead — with parameters
// calibrated to the hardware footnoted in the paper: an Intel i7-6700HQ
// (4 cores / 8 threads, 32K/256K/6M caches, 64 B lines, dual-channel
// DDR4) and a CUDA capability 5.0 device (5 SMs × 128 cores, 4 GB global
// memory, 2 MB L2). All engines still execute for real; the model prices
// the executions.
//
// The model intentionally captures exactly the effects the paper's Figure
// 2 demonstrates:
//
//  1. Sequential bandwidth-bound scans whose cost scales with *touched*
//     bytes, so NSM scans of one attribute pay for the whole record while
//     DSM scans pay only for the attribute (panels 2-4).
//  2. Fixed per-thread management cost, so multi-threading loses on tiny
//     inputs and wins on large ones (panels 1-2).
//  3. Cache-miss-priced random access, so record-centric materialization
//     favours NSM (one or two lines per record) over DSM (one miss per
//     attribute) (panel 1).
//  4. A device whose global-memory bandwidth dwarfs the host's but that
//     sits behind a narrow bus, so device scans dominate only once the
//     data is resident (panel 3 vs panel 4).
package perfmodel

import (
	"fmt"
	"sync"
	"time"
)

// HostProfile models a host CPU platform.
type HostProfile struct {
	// Name labels the profile in harness output.
	Name string
	// Threads is the thread count used by multi-threaded policies.
	Threads int
	// ThreadSpawnNs is the fixed management cost to create, dispatch and
	// join one worker thread.
	ThreadSpawnNs float64
	// CacheLine is the cache line size in bytes.
	CacheLine int
	// L1, L2, L3 are per-level cache capacities in bytes (L3 shared).
	L1, L2, L3 int64
	// SeqBandwidth is the sustained sequential read bandwidth of one core
	// in bytes/s.
	SeqBandwidth float64
	// MemBandwidth is the total DRAM bandwidth shared by all cores in
	// bytes/s; multi-threaded scans saturate at this.
	MemBandwidth float64
	// MissLatencyNs is the DRAM access latency of one cache miss.
	MissLatencyNs float64
	// L2LatencyNs and L3LatencyNs are hit latencies for smaller working sets.
	L2LatencyNs, L3LatencyNs float64
	// OpNs is the per-element ALU cost of a simple aggregate step.
	OpNs float64
	// PoolWakeNs is the fixed cost of waking the resident morsel-driven
	// worker pool for one operator call (no thread creation — the workers
	// already exist).
	PoolWakeNs float64
	// MorselDispatchNs is the scheduling cost of claiming one morsel from
	// a query's work queue (an atomic fetch-add plus queue scan).
	MorselDispatchNs float64
	// MorselRows is the positions-per-morsel granularity the model
	// assumes for morsel-driven execution.
	MorselRows int64
	// ZoneCheckNsPerFragment is the cost of consulting one fragment's
	// zone map during data skipping: two comparisons against a small
	// resident struct. Charged per candidate fragment whether or not it
	// survives, so pruning is honestly priced.
	ZoneCheckNsPerFragment float64
}

// ZoneCheckNs prices the zone-map overlap tests of one pruned operator
// call over the given candidate fragment count.
func (h HostProfile) ZoneCheckNs(fragments int) float64 {
	return float64(fragments) * h.ZoneCheckNsPerFragment
}

// DeviceProfile models a discrete GPU platform.
type DeviceProfile struct {
	// Name labels the profile in harness output.
	Name string
	// GlobalMemory is the device memory capacity in bytes.
	GlobalMemory int64
	// SMs and CoresPerSM describe the execution resources.
	SMs, CoresPerSM int
	// MaxThreadsPerBlock bounds kernel launch geometry.
	MaxThreadsPerBlock int
	// GlobalBandwidth is the device global-memory bandwidth in bytes/s.
	GlobalBandwidth float64
	// TransferBandwidth is the host↔device bus bandwidth in bytes/s.
	TransferBandwidth float64
	// TransferLatencyNs is the fixed cost of one bus transfer.
	TransferLatencyNs float64
	// KernelLaunchNs is the fixed cost of one kernel launch.
	KernelLaunchNs float64
	// CoalesceSegment is the memory transaction size in bytes; strided
	// (uncoalesced) access wastes the untouched part of each segment.
	CoalesceSegment int
}

// DefaultHost returns the host profile calibrated to the paper's
// i7-6700HQ testbed (footnote 4).
func DefaultHost() HostProfile {
	return HostProfile{
		Name:          "i7-6700HQ",
		Threads:       8,
		ThreadSpawnNs: 12_000, // ~12 µs create+dispatch+join per worker
		CacheLine:     64,
		L1:            32 << 10,
		L2:            256 << 10,
		L3:            6 << 20,
		SeqBandwidth:  7e9,  // one core streaming
		MemBandwidth:  20e9, // dual-channel DDR4 sustained
		MissLatencyNs: 90,
		L2LatencyNs:   4,
		L3LatencyNs:   14,
		OpNs:          0.35,

		PoolWakeNs:       2_000, // futex wake of resident workers
		MorselDispatchNs: 150,   // atomic claim + queue scan per morsel
		MorselRows:       16 << 10,

		ZoneCheckNsPerFragment: 6, // two compares on an L1-resident struct
	}
}

// DefaultDevice returns the device profile calibrated to the paper's CUDA
// capability 5.0 card (footnote 4): 4044 MB global memory, 5 SMs with 128
// cores each, 2 MB L2, ≤1024 threads/block, PCIe 3.0 x16-class bus.
func DefaultDevice() DeviceProfile {
	return DeviceProfile{
		Name:               "cc5.0-sim",
		GlobalMemory:       4044 << 20,
		SMs:                5,
		CoresPerSM:         128,
		MaxThreadsPerBlock: 1024,
		GlobalBandwidth:    80e9,
		TransferBandwidth:  12e9,
		TransferLatencyNs:  10_000,
		KernelLaunchNs:     5_000,
		CoalesceSegment:    32,
	}
}

// accessLatencyNs prices one random access against a working set: sets
// resident in L2/L3 hit at cache latency, larger ones at DRAM latency.
func (h HostProfile) accessLatencyNs(workingSet int64) float64 {
	switch {
	case workingSet <= h.L2:
		return h.L2LatencyNs
	case workingSet <= h.L3:
		return h.L3LatencyNs
	default:
		return h.MissLatencyNs
	}
}

// SeqScanNs prices a single-threaded sequential scan that touches the
// given bytes and performs n per-element operations: the maximum of the
// bandwidth term and the ALU term.
func (h HostProfile) SeqScanNs(bytes int64, n int64) float64 {
	bw := float64(bytes) / h.SeqBandwidth * 1e9
	alu := float64(n) * h.OpNs
	if bw > alu {
		return bw
	}
	return alu
}

// StridedBytes returns the bytes a scan of n fields of size fieldSize
// spaced stride bytes apart actually pulls through the cache hierarchy:
// with stride below one cache line several fields share a line; beyond a
// line, the whole stride region's lines are touched only up to one line
// per field.
func (h HostProfile) StridedBytes(n int64, fieldSize, stride int) int64 {
	if stride <= fieldSize {
		return n * int64(fieldSize)
	}
	perField := stride
	if perField > h.CacheLine {
		perField = h.CacheLine
	}
	if perField < fieldSize {
		perField = fieldSize
	}
	return n * int64(perField)
}

// ScanSumNs prices an attribute-centric aggregate (the paper's Q2) over n
// records with the given field size and physical stride, on threads
// workers. threads == 1 uses the sequential path with no management cost.
func (h HostProfile) ScanSumNs(n int64, fieldSize, stride, threads int) float64 {
	bytes := h.StridedBytes(n, fieldSize, stride)
	if threads <= 1 {
		return h.SeqScanNs(bytes, n)
	}
	// Blockwise partitioning: each worker streams its share; the shared
	// memory bus caps aggregate bandwidth.
	perCore := h.SeqBandwidth * float64(threads)
	bw := perCore
	if bw > h.MemBandwidth {
		bw = h.MemBandwidth
	}
	stream := float64(bytes) / bw * 1e9
	alu := float64(n) * h.OpNs / float64(threads)
	work := stream
	if alu > work {
		work = alu
	}
	return h.ThreadMgmtNs(threads) + work
}

// ThreadMgmtNs is the fixed multi-threading management cost for the given
// worker count (creation, dispatch and join are serialized on the
// coordinating thread).
func (h HostProfile) ThreadMgmtNs(threads int) float64 {
	return float64(threads) * h.ThreadSpawnNs
}

// Morsels returns how many morsels of the profile's granularity cover n
// positions.
func (h HostProfile) Morsels(n int64) int64 {
	m := h.MorselRows
	if m < 1 {
		m = 16 << 10
	}
	if n <= 0 {
		return 0
	}
	return (n + m - 1) / m
}

// MorselAmortizedNs prices workNs of divisible work executed
// morsel-driven on a resident pool: one pool wake (no thread creation),
// plus the work and the per-morsel dispatch cost spread over the workers
// that can actually run concurrently — at most one per morsel. Unlike
// ThreadMgmtNs, dispatch overlaps with execution on other workers, so
// tiny inputs cost roughly the single-threaded time plus the wake.
func (h HostProfile) MorselAmortizedNs(workNs float64, morsels int64, workers int) float64 {
	if morsels < 1 {
		morsels = 1
	}
	p := int64(workers)
	if p > morsels {
		p = morsels
	}
	if p < 1 {
		p = 1
	}
	return h.PoolWakeNs + (workNs+float64(morsels)*h.MorselDispatchNs)/float64(p)
}

// ScanSumMorselNs prices the attribute-centric aggregate of ScanSumNs
// executed morsel-driven on a resident pool of the given worker count.
// The streaming term still saturates at the shared memory bus.
func (h HostProfile) ScanSumMorselNs(n int64, fieldSize, stride, workers int) float64 {
	bytes := h.StridedBytes(n, fieldSize, stride)
	work := h.SeqScanNs(bytes, n) // total single-core work to divide
	morsels := h.Morsels(n)
	p := int64(workers)
	if p > morsels {
		p = morsels
	}
	if p < 1 {
		p = 1
	}
	// Re-apply the bandwidth cap that ScanSumNs models: p cores cannot
	// stream faster than the memory bus allows.
	perCore := h.SeqBandwidth * float64(p)
	if perCore > h.MemBandwidth {
		floor := float64(bytes) / h.MemBandwidth * 1e9
		if work/float64(p) < floor {
			work = floor * float64(p)
		}
	}
	return h.MorselAmortizedNs(work, morsels, workers)
}

// MaterializeMorselNs prices the record-centric materialization of
// MaterializeNs executed morsel-driven on a resident pool.
func (h HostProfile) MaterializeMorselNs(k, n int64, recordWidth, fragmentsPerRecord, workers int) float64 {
	work := h.MaterializeNs(k, n, recordWidth, fragmentsPerRecord, 1)
	return h.MorselAmortizedNs(work, h.Morsels(k), workers)
}

// MaterializeNs prices a record-centric materialization (the paper's Q1
// generalized to k records): k position-list lookups against a table of n
// records, recordWidth bytes wide, of which arity attributes are read
// from fragmentsPerRecord distinct fragments. For NSM,
// fragmentsPerRecord == 1 and each record costs ceil(width/line) misses;
// for DSM it equals the arity and each attribute is its own miss.
func (h HostProfile) MaterializeNs(k, n int64, recordWidth, fragmentsPerRecord, threads int) float64 {
	workingSet := n * int64(recordWidth)
	lat := h.accessLatencyNs(workingSet)
	linesPerFragment := (recordWidth/fragmentsPerRecord + h.CacheLine - 1) / h.CacheLine
	if linesPerFragment < 1 {
		linesPerFragment = 1
	}
	missesPerRecord := float64(fragmentsPerRecord * linesPerFragment)
	decode := float64(recordWidth) / h.SeqBandwidth * 1e9 // copy-out of the fields
	perRecord := missesPerRecord*lat + decode
	if threads <= 1 {
		return float64(k) * perRecord
	}
	return h.ThreadMgmtNs(threads) + float64(k)*perRecord/float64(threads)
}

// TransferNs prices one host↔device bus transfer of the given bytes.
func (d DeviceProfile) TransferNs(bytes int64) float64 {
	return d.TransferLatencyNs + float64(bytes)/d.TransferBandwidth*1e9
}

// effectiveBandwidth derates global bandwidth for uncoalesced access: a
// strided read fetches whole coalescing segments but uses only fieldSize
// bytes of each.
func (d DeviceProfile) effectiveBandwidth(fieldSize, stride int) float64 {
	if stride <= fieldSize || fieldSize >= d.CoalesceSegment {
		return d.GlobalBandwidth
	}
	waste := float64(d.CoalesceSegment) / float64(fieldSize)
	if float64(stride) < float64(d.CoalesceSegment) {
		waste = float64(stride) / float64(fieldSize)
	}
	return d.GlobalBandwidth / waste
}

// ReduceKernelNs prices a Harris-style parallel tree reduction over n
// device-resident elements of fieldSize bytes spaced stride bytes apart,
// launched with the given grid geometry, plus the final single-block pass.
func (d DeviceProfile) ReduceKernelNs(n int64, fieldSize, stride, blocks, threadsPerBlock int) float64 {
	bw := d.effectiveBandwidth(fieldSize, stride)
	sweep := float64(n*int64(fieldSize)) / bw * 1e9
	// Tree depth adds a latency term per level within each block.
	depth := 0
	for 1<<depth < threadsPerBlock {
		depth++
	}
	levels := float64(depth) * 40 // ~40 ns sync+step per level
	// Two launches: the grid-wide pass and the final 1-block reduction.
	return 2*d.KernelLaunchNs + sweep + levels
}

// GroupKernelNs prices the fused filter+hash-aggregate kernel over n
// device-resident (key, value) element pairs: ONE launch sweeps both
// columns at effective bandwidth, tests each value against the closed
// predicate interval, and folds the matched elements into per-SM
// shared-memory group tables with one atomic update each; the partial
// tables merge in a log-depth final step priced like the reduction's
// levels. This is the one-launch contract of the fused
// predicate→group-by pipeline — the materialize-then-aggregate baseline
// pays two launches plus an intermediate position-list round trip.
func (d DeviceProfile) GroupKernelNs(n, matched int64, fieldSize, stride, blocks, threadsPerBlock int) float64 {
	bw := d.effectiveBandwidth(fieldSize, stride)
	sweep := float64(2*n*int64(fieldSize)) / bw * 1e9 // key and value columns
	atomics := float64(matched) * 2                   // shared-memory hash insert per match
	depth := 0
	for 1<<depth < threadsPerBlock {
		depth++
	}
	levels := float64(depth) * 40 // table-merge tree within each block
	return d.KernelLaunchNs + sweep + atomics + levels
}

// DecodeKernelNs prices the device-side decompression kernel that
// expands a compressed column image (RLE run fills, dictionary gathers,
// FOR delta widening) into a dense scratch column ahead of the fused
// reduction: one launch, the compressed bytes read and the raw bytes
// written, both at global bandwidth. Decoding is branch-light and
// coalesced, so bandwidth — not ALU — bounds it.
func (d DeviceProfile) DecodeKernelNs(compressedBytes, rawBytes int64) float64 {
	return d.KernelLaunchNs + float64(compressedBytes+rawBytes)/d.GlobalBandwidth*1e9
}

// GatherKernelNs prices a device gather of k records of recordWidth bytes
// from a table of n records (random global-memory access).
func (d DeviceProfile) GatherKernelNs(k, n int64, recordWidth int) float64 {
	segs := float64((recordWidth + d.CoalesceSegment - 1) / d.CoalesceSegment)
	perRecord := segs * float64(d.CoalesceSegment) / d.GlobalBandwidth * 1e9
	// Random access cannot be fully pipelined; add a latency share.
	perRecord += 350 / float64(d.SMs)
	return d.KernelLaunchNs + float64(k)*perRecord
}

// ScatterKernelNs prices a device scatter of k elements of elemSize bytes
// to random positions of a device-resident vector: the write-side mirror
// of GatherKernelNs. Each element dirties one coalescing segment (random
// writes rarely share segments), and the uncoalesced stores add a latency
// share the SMs cannot hide.
func (d DeviceProfile) ScatterKernelNs(k int64, elemSize int) float64 {
	segs := float64((elemSize + d.CoalesceSegment - 1) / d.CoalesceSegment)
	perElem := segs * float64(d.CoalesceSegment) / d.GlobalBandwidth * 1e9
	perElem += 350 / float64(d.SMs)
	return d.KernelLaunchNs + float64(k)*perElem
}

// OverlapNs prices a pipelined device phase in which the copy engine
// moves transferNs worth of bus traffic while the SMs execute computeNs
// worth of kernels, double-buffered over the given number of pipeline
// stages (chunks): the engines run concurrently, so the steady state
// costs the maximum of the two lanes, plus a fill/drain bubble of one
// stage of the shorter lane. With one stage (or fewer) nothing overlaps
// and the phases serialize — exactly the sum the synchronous paths
// charge.
func (d DeviceProfile) OverlapNs(transferNs, computeNs float64, stages int) float64 {
	if transferNs <= 0 {
		return computeNs
	}
	if computeNs <= 0 {
		return transferNs
	}
	if stages <= 1 {
		return transferNs + computeNs
	}
	longer, shorter := transferNs, computeNs
	if shorter > longer {
		longer, shorter = shorter, longer
	}
	return longer + shorter/float64(stages)
}

// Clock is a deterministic simulated clock. Engines and the harness
// advance it with model-priced durations; Elapsed converts to wall-clock
// units for reporting. The zero value is ready to use; Clock is safe for
// concurrent use (the whole platform shares one).
type Clock struct {
	mu sync.Mutex
	ns float64
}

// Advance adds ns nanoseconds of simulated time.
func (c *Clock) Advance(ns float64) {
	if ns > 0 {
		c.mu.Lock()
		c.ns += ns
		c.mu.Unlock()
	}
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.ns = 0
	c.mu.Unlock()
}

// ElapsedNs returns the simulated nanoseconds.
func (c *Clock) ElapsedNs() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

// Elapsed returns the simulated time as a duration.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.ns) }

// String renders the clock state.
func (c *Clock) String() string { return fmt.Sprintf("simclock(%v)", c.Elapsed()) }
