package perfmodel

import (
	"testing"
	"testing/quick"
	"time"
)

// The paper's item record: 20 bytes of 4 fields plus an 8-byte price.
const (
	itemWidth     = 28
	priceSize     = 8
	customerWidth = 96
	customerArity = 21
)

// Finding (i) of Section II-B: on a tiny number of records, sequential
// execution outperforms multi-threaded execution since thread-management
// costs dominate.
func TestTinyInputsFavourSingleThreaded(t *testing.T) {
	h := DefaultHost()
	n := int64(150)
	single := h.ScanSumNs(n, priceSize, priceSize, 1)
	multi := h.ScanSumNs(n, priceSize, priceSize, h.Threads)
	if single >= multi {
		t.Errorf("tiny scan: single %.0fns >= multi %.0fns", single, multi)
	}
}

// Finding (i) inverted at scale: for large inputs multi-threading wins.
func TestLargeInputsFavourMultiThreaded(t *testing.T) {
	h := DefaultHost()
	n := int64(50_000_000)
	single := h.ScanSumNs(n, priceSize, priceSize, 1)
	multi := h.ScanSumNs(n, priceSize, priceSize, h.Threads)
	if multi >= single {
		t.Errorf("large scan: multi %.0fns >= single %.0fns", multi, single)
	}
}

// Finding (ii): for record-centric operations NSM outperforms DSM, since
// one record costs a couple of line misses instead of one miss per field.
func TestRecordCentricFavoursNSM(t *testing.T) {
	h := DefaultHost()
	k, n := int64(150), int64(50_000_000)
	nsm := h.MaterializeNs(k, n, customerWidth, 1, 1)
	dsm := h.MaterializeNs(k, n, customerWidth, customerArity, 1)
	if nsm >= dsm {
		t.Errorf("materialize: NSM %.0fns >= DSM %.0fns", nsm, dsm)
	}
	if dsm/nsm < 3 {
		t.Errorf("NSM advantage only %.1fx, expect >=3x for 21 attributes", dsm/nsm)
	}
}

// Finding (iii): for attribute-centric operations DSM outperforms NSM —
// the NSM scan drags the whole record through the cache.
func TestAttributeCentricFavoursDSM(t *testing.T) {
	h := DefaultHost()
	n := int64(50_000_000)
	for _, threads := range []int{1, h.Threads} {
		dsm := h.ScanSumNs(n, priceSize, priceSize, threads)
		nsm := h.ScanSumNs(n, priceSize, itemWidth, threads)
		if dsm >= nsm {
			t.Errorf("threads=%d: DSM %.0fns >= NSM %.0fns", threads, dsm, nsm)
		}
	}
}

// Finding (iv): once the column is resident in device memory, the GPU
// outperforms the CPU; behind the bus it does not dominate.
func TestDeviceDominatesOnlyWhenResident(t *testing.T) {
	h, d := DefaultHost(), DefaultDevice()
	n := int64(50_000_000)
	bytes := n * priceSize
	hostMulti := h.ScanSumNs(n, priceSize, priceSize, h.Threads)
	resident := d.ReduceKernelNs(n, priceSize, priceSize, 1024, 512)
	withTransfer := d.TransferNs(bytes) + resident
	if resident >= hostMulti {
		t.Errorf("resident device %.0fns >= host multi %.0fns", resident, hostMulti)
	}
	if withTransfer <= hostMulti/2 {
		t.Errorf("transfer-bound device %.0fns should not dominate host %.0fns", withTransfer, hostMulti)
	}
}

// The resident-device throughput should land near the paper's ~10000M
// rows/s plateau (panel 4) and the host multi-threaded one near ~2000M.
func TestThroughputPlateausMatchPaperShape(t *testing.T) {
	h, d := DefaultHost(), DefaultDevice()
	n := int64(65_000_000)
	devNs := d.ReduceKernelNs(n, priceSize, priceSize, 1024, 512)
	devThroughput := float64(n) / devNs * 1e9 / 1e6 // M rows/s
	if devThroughput < 7000 || devThroughput > 13000 {
		t.Errorf("device resident throughput = %.0fM rows/s, want ~10000M", devThroughput)
	}
	hostNs := h.ScanSumNs(n, priceSize, priceSize, h.Threads)
	hostThroughput := float64(n) / hostNs * 1e9 / 1e6
	if hostThroughput < 1200 || hostThroughput > 4000 {
		t.Errorf("host multi throughput = %.0fM rows/s, want ~2000M", hostThroughput)
	}
	if devThroughput/hostThroughput < 3 {
		t.Errorf("device/host ratio = %.1f, want >= 3", devThroughput/hostThroughput)
	}
}

func TestStridedBytes(t *testing.T) {
	h := DefaultHost()
	cases := []struct {
		n           int64
		field, strd int
		want        int64
	}{
		{100, 8, 8, 800},     // contiguous: field bytes only
		{100, 8, 4, 800},     // stride below field size clamps to field
		{100, 8, 28, 2800},   // item NSM: whole record per field
		{100, 8, 96, 6400},   // customer NSM: capped at one line per field
		{100, 8, 1000, 6400}, // huge stride: still one line per field
	}
	for _, c := range cases {
		if got := h.StridedBytes(c.n, c.field, c.strd); got != c.want {
			t.Errorf("StridedBytes(%d,%d,%d) = %d, want %d", c.n, c.field, c.strd, got, c.want)
		}
	}
}

func TestAccessLatencyTiers(t *testing.T) {
	h := DefaultHost()
	if l2 := h.accessLatencyNs(h.L2); l2 != h.L2LatencyNs {
		t.Errorf("L2 working set latency = %v", l2)
	}
	if l3 := h.accessLatencyNs(h.L3); l3 != h.L3LatencyNs {
		t.Errorf("L3 working set latency = %v", l3)
	}
	if mem := h.accessLatencyNs(h.L3 + 1); mem != h.MissLatencyNs {
		t.Errorf("DRAM working set latency = %v", mem)
	}
}

func TestMaterializeCacheResidencyEffect(t *testing.T) {
	h := DefaultHost()
	small := h.MaterializeNs(150, 1000, customerWidth, 1, 1) // fits in caches
	big := h.MaterializeNs(150, 50_000_000, customerWidth, 1, 1)
	if small >= big {
		t.Errorf("cache-resident materialize %.0fns >= DRAM one %.0fns", small, big)
	}
}

func TestTransferNsComponents(t *testing.T) {
	d := DefaultDevice()
	latOnly := d.TransferNs(0)
	if latOnly != d.TransferLatencyNs {
		t.Errorf("zero-byte transfer = %.0fns, want latency %.0fns", latOnly, d.TransferLatencyNs)
	}
	gb := d.TransferNs(1 << 30)
	wantSeconds := float64(1<<30) / d.TransferBandwidth
	if gb < wantSeconds*1e9 {
		t.Errorf("1GiB transfer %.0fns below pure bandwidth term", gb)
	}
}

func TestEffectiveBandwidthCoalescing(t *testing.T) {
	d := DefaultDevice()
	full := d.effectiveBandwidth(8, 8)
	if full != d.GlobalBandwidth {
		t.Errorf("coalesced bandwidth derated: %v", full)
	}
	strided := d.effectiveBandwidth(8, 28)
	if strided >= full {
		t.Error("uncoalesced access should derate bandwidth")
	}
	wide := d.effectiveBandwidth(64, 128)
	if wide != d.GlobalBandwidth {
		t.Error("fields at or above segment size should not be derated")
	}
}

func TestGatherKernelScalesWithK(t *testing.T) {
	d := DefaultDevice()
	small := d.GatherKernelNs(10, 1_000_000, customerWidth)
	big := d.GatherKernelNs(10_000, 1_000_000, customerWidth)
	if big <= small {
		t.Error("gather cost must grow with k")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1500)
	c.Advance(-5) // negative advances are ignored
	if c.ElapsedNs() != 1500 {
		t.Errorf("ElapsedNs = %v", c.ElapsedNs())
	}
	if c.Elapsed() != 1500*time.Nanosecond {
		t.Errorf("Elapsed = %v", c.Elapsed())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	c.Reset()
	if c.ElapsedNs() != 0 {
		t.Error("Reset failed")
	}
}

// Property: scan cost is monotone in n for every configuration.
func TestQuickScanMonotoneInN(t *testing.T) {
	h := DefaultHost()
	f := func(a, b uint32, multi bool) bool {
		n1, n2 := int64(a%10_000_000), int64(b%10_000_000)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		threads := 1
		if multi {
			threads = h.Threads
		}
		return h.ScanSumNs(n1, priceSize, itemWidth, threads) <= h.ScanSumNs(n2, priceSize, itemWidth, threads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: materialization under NSM never exceeds DSM for multi-field
// records on DRAM-resident tables.
func TestQuickNSMBeatsDSMForMaterialize(t *testing.T) {
	h := DefaultHost()
	f := func(kRaw uint16, arityRaw uint8) bool {
		k := int64(kRaw)%1000 + 1
		arity := int(arityRaw)%20 + 2
		width := arity * 8
		n := int64(20_000_000)
		return h.MaterializeNs(k, n, width, 1, 1) <= h.MaterializeNs(k, n, width, arity, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding the bus transfer never makes the device faster.
func TestQuickTransferNeverHelps(t *testing.T) {
	d := DefaultDevice()
	f := func(nRaw uint32) bool {
		n := int64(nRaw % 50_000_000)
		resident := d.ReduceKernelNs(n, priceSize, priceSize, 1024, 512)
		return d.TransferNs(n*priceSize)+resident >= resident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultProfilesMatchPaperFootnote(t *testing.T) {
	h, d := DefaultHost(), DefaultDevice()
	if h.Threads != 8 {
		t.Errorf("host threads = %d, want 8 (paper fixes 8 threads)", h.Threads)
	}
	if h.L1 != 32<<10 || h.L2 != 256<<10 || h.L3 != 6<<20 {
		t.Error("host cache sizes do not match footnote 4")
	}
	if d.GlobalMemory != 4044<<20 {
		t.Errorf("device memory = %d, want 4044 MB", d.GlobalMemory)
	}
	if d.SMs != 5 || d.CoresPerSM != 128 || d.MaxThreadsPerBlock != 1024 {
		t.Error("device execution resources do not match footnote 4")
	}
}

// Scatter pricing: random single-element writes each dirty a full
// coalescing segment, so the per-element cost is flat in elemSize up to
// the segment width and the total is linear in k above the launch cost.
func TestScatterKernelNs(t *testing.T) {
	d := DefaultDevice()
	if got := d.ScatterKernelNs(0, 8); got != d.KernelLaunchNs {
		t.Errorf("empty scatter = %.0fns, want bare launch %.0fns", got, d.KernelLaunchNs)
	}
	one := d.ScatterKernelNs(1, 8) - d.KernelLaunchNs
	k := int64(100_000)
	total := d.ScatterKernelNs(k, 8) - d.KernelLaunchNs
	if diff := total - float64(k)*one; diff > 1e-6*total || diff < -1e-6*total {
		t.Errorf("scatter not linear in k: %.0fns vs %d*%.2fns", total, k, one)
	}
	// 8-byte and 32-byte elements land in the same coalescing segment.
	if a, b := d.ScatterKernelNs(k, 8), d.ScatterKernelNs(k, d.CoalesceSegment); a != b {
		t.Errorf("sub-segment scatter widths priced differently: %.0f vs %.0f", a, b)
	}
	// Wider-than-segment elements cost more.
	if a, b := d.ScatterKernelNs(k, d.CoalesceSegment), d.ScatterKernelNs(k, 4*d.CoalesceSegment); b <= a {
		t.Errorf("4-segment scatter %.0fns not dearer than 1-segment %.0fns", b, a)
	}
}

// Overlap pricing: one empty lane costs the other lane alone; one stage
// serializes; deep pipelines approach max(transfer, compute).
func TestOverlapNs(t *testing.T) {
	d := DefaultDevice()
	if got := d.OverlapNs(0, 700, 2); got != 700 {
		t.Errorf("no transfer: %.0f, want 700", got)
	}
	if got := d.OverlapNs(500, 0, 2); got != 500 {
		t.Errorf("no compute: %.0f, want 500", got)
	}
	if got := d.OverlapNs(500, 700, 1); got != 1200 {
		t.Errorf("one stage: %.0f, want serial 1200", got)
	}
	if got := d.OverlapNs(500, 700, 2); got != 700+250 {
		t.Errorf("two stages: %.0f, want 950", got)
	}
	// Symmetric in the lanes.
	if a, b := d.OverlapNs(500, 700, 2), d.OverlapNs(700, 500, 2); a != b {
		t.Errorf("overlap not symmetric: %.0f vs %.0f", a, b)
	}
	f := func(tRaw, cRaw uint16, stagesRaw uint8) bool {
		tr, cp := float64(tRaw)+1, float64(cRaw)+1
		stages := int(stagesRaw)%8 + 2
		got := d.OverlapNs(tr, cp, stages)
		longer := tr
		if cp > longer {
			longer = cp
		}
		// Bounded by [max, sum], and deeper pipelines never cost more.
		return got >= longer && got <= tr+cp && d.OverlapNs(tr, cp, stages+1) <= got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
