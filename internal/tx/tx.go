// Package tx implements a multi-version concurrency control (MVCC)
// version store with snapshot isolation. It is the substrate behind the
// paper's challenge (b.iii) — "efficient processing of both workload
// types without interferences between long-running ad-hoc analytic
// queries and massive short-living write-intensive transactional queries"
// — and the mechanism HyPer-style engines use to detach analytic query
// execution from mission-critical transactional data: analytic readers
// pin a snapshot timestamp and never block or observe concurrent writers.
//
// The design is a classic timestamp-ordered version chain per row with
// buffered writes and first-committer-wins conflict resolution:
//
//   - Begin assigns the transaction a begin timestamp (the snapshot).
//   - Reads see the newest version committed at or before the snapshot,
//     plus the transaction's own buffered writes.
//   - Commit validates that no written row has a newer committed version
//     than the snapshot (else ErrConflict) and installs all writes
//     atomically at a fresh commit timestamp.
//   - Prune garbage-collects versions no active snapshot can see.
package tx

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
)

// Process-wide transaction counters, aggregated over every Manager and
// Store (engines create one of each per table).
var (
	mBegins         = obs.NewCounter("tx.begins")
	mCommits        = obs.NewCounter("tx.commits")
	mConflicts      = obs.NewCounter("tx.conflicts")
	mAborts         = obs.NewCounter("tx.aborts")
	mVersionsPruned = obs.NewCounter("tx.versions_pruned")
)

// Transaction errors.
var (
	// ErrConflict is returned by Commit when another transaction
	// committed a newer version of a written row (first committer wins).
	ErrConflict = errors.New("tx: write-write conflict")
	// ErrClosed is returned when using a committed or aborted transaction.
	ErrClosed = errors.New("tx: transaction already finished")
	// ErrNotFound is returned when reading a row with no visible version.
	ErrNotFound = errors.New("tx: no visible version")
)

// version is one entry of a row's version chain, newest first.
type version struct {
	ts      uint64
	rec     schema.Record
	deleted bool
	next    *version
}

// Store holds the version chains of one relation. The zero value is not
// usable; create stores with NewStore. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	chains map[uint64]*version
}

// NewStore creates an empty version store.
func NewStore() *Store {
	return &Store{chains: make(map[uint64]*version)}
}

// visible returns the newest version of row committed at or before ts.
func (s *Store) visible(row uint64, ts uint64) *version {
	for v := s.chains[row]; v != nil; v = v.next {
		if v.ts <= ts {
			return v
		}
	}
	return nil
}

// LatestTS returns the commit timestamp of row's newest version (0 if the
// row has none).
func (s *Store) LatestTS(row uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v := s.chains[row]; v != nil {
		return v.ts
	}
	return 0
}

// Rows returns the number of rows with at least one version.
func (s *Store) Rows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains)
}

// Versions returns the total number of stored versions (for GC tests and
// compaction policies).
func (s *Store) Versions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, v := range s.chains {
		for ; v != nil; v = v.next {
			n++
		}
	}
	return n
}

// Prune drops versions that no snapshot at or after minTS can see: for
// each chain the newest version with ts <= minTS is kept, everything
// older is cut. Deleted markers older than minTS are removed entirely.
func (s *Store) Prune(minTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pruned int64
	for row, v := range s.chains {
		// Find the newest version visible at minTS; cut its tail.
		for cur := v; cur != nil; cur = cur.next {
			if cur.ts <= minTS {
				for t := cur.next; t != nil; t = t.next {
					pruned++
				}
				cur.next = nil
				break
			}
		}
		// A chain whose only remaining content is an old delete marker
		// can vanish.
		if v.deleted && v.ts <= minTS && v.next == nil {
			delete(s.chains, row)
			pruned++
		}
	}
	if pruned > 0 {
		mVersionsPruned.Add(pruned)
	}
}

// Forget removes row's entire version chain. It is only safe when the
// newest version's value has been folded into the caller's base storage
// and no active snapshot predates that version (callers guard with
// Manager.MinActiveTS) — the merge path of HTAP engines.
func (s *Store) Forget(row uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for v := s.chains[row]; v != nil; v = v.next {
		n++
	}
	delete(s.chains, row)
	if n > 0 {
		mVersionsPruned.Add(n)
	}
}

// Manager issues timestamps and transactions over any number of stores.
// Safe for concurrent use.
type Manager struct {
	mu     sync.Mutex
	clock  uint64
	active map[uint64]uint64 // txID → beginTS
	nextID uint64
	logger CommitLogger // write-ahead hook; nil when the table is not durable
}

// NewManager creates a transaction manager.
func NewManager() *Manager {
	return &Manager{active: make(map[uint64]uint64)}
}

// Begin starts a transaction with a snapshot of the current clock.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	t := &Tx{
		m:       m,
		id:      m.nextID,
		beginTS: m.clock,
		writes:  make(map[writeKey]writeVal),
	}
	m.active[t.id] = t.beginTS
	mBegins.Inc()
	return t
}

// MinActiveTS returns the smallest snapshot timestamp any active
// transaction holds, or the current clock when none is active. It is the
// safe horizon for Store.Prune.
func (m *Manager) MinActiveTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.clock
	for _, ts := range m.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// Now returns the current logical clock value.
func (m *Manager) Now() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// writeKey addresses one row of one store inside a transaction's buffer.
type writeKey struct {
	store *Store
	row   uint64
}

// writeVal is one buffered write.
type writeVal struct {
	rec     schema.Record
	deleted bool
}

// Tx is one transaction. A Tx is not safe for concurrent use by multiple
// goroutines (like database handles, each goroutine begins its own).
type Tx struct {
	m       *Manager
	id      uint64
	beginTS uint64
	writes  map[writeKey]writeVal
	closed  bool
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

// SnapshotTS returns the transaction's begin timestamp.
func (t *Tx) SnapshotTS() uint64 { return t.beginTS }

// Read returns the record of row visible to this transaction: its own
// buffered write if any, else the newest version at or before its
// snapshot. ErrNotFound is returned for invisible or deleted rows.
func (t *Tx) Read(s *Store, row uint64) (schema.Record, error) {
	if t.closed {
		return nil, ErrClosed
	}
	if w, ok := t.writes[writeKey{s, row}]; ok {
		if w.deleted {
			return nil, fmt.Errorf("%w: row %d deleted in this transaction", ErrNotFound, row)
		}
		return w.rec.Clone(), nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.visible(row, t.beginTS)
	if v == nil || v.deleted {
		return nil, fmt.Errorf("%w: row %d at ts %d", ErrNotFound, row, t.beginTS)
	}
	return v.rec.Clone(), nil
}

// Write buffers a full-record write of row.
func (t *Tx) Write(s *Store, row uint64, rec schema.Record) error {
	if t.closed {
		return ErrClosed
	}
	t.writes[writeKey{s, row}] = writeVal{rec: rec.Clone()}
	return nil
}

// Delete buffers a deletion of row.
func (t *Tx) Delete(s *Store, row uint64) error {
	if t.closed {
		return ErrClosed
	}
	t.writes[writeKey{s, row}] = writeVal{deleted: true}
	return nil
}

// Pending returns the number of buffered writes.
func (t *Tx) Pending() int { return len(t.writes) }

// Commit validates and installs the buffered writes atomically at a fresh
// commit timestamp. On conflict everything is discarded and ErrConflict
// returned; the transaction is finished either way. When the manager has
// a CommitLogger, the write set is appended to the log inside the commit
// critical section (before versions install) and Commit blocks on
// durability after the critical section ends.
func (t *Tx) Commit() error {
	if t.closed {
		return ErrClosed
	}
	t.closed = true

	wait, err := t.commitCritical()
	if err != nil {
		return err
	}
	// Durability wait happens outside the commit lock: concurrent
	// committers pile into the same group-commit flush instead of
	// serializing on fsync.
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("tx: commit not durable: %w", err)
		}
	}
	return nil
}

// commitCritical is Commit's validate+log+install section under the
// manager lock. It returns the durability wait hook from the logger.
func (t *Tx) commitCritical() (func() error, error) {
	// The manager lock is held across validate+install, making Commit the
	// serial commit point: commit-timestamp order equals validation order,
	// and — because the logger runs here too — equals log append order.
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	defer delete(t.m.active, t.id)

	// Group writes per store; each store is validated under its own lock.
	stores := make(map[*Store][]writeKey)
	for k := range t.writes {
		stores[k.store] = append(stores[k.store], k)
	}
	for s, keys := range stores {
		s.mu.Lock()
		for _, k := range keys {
			if v := s.chains[k.row]; v != nil && v.ts > t.beginTS {
				s.mu.Unlock()
				mConflicts.Inc()
				return nil, fmt.Errorf("%w: row %d written at ts %d after snapshot %d",
					ErrConflict, k.row, v.ts, t.beginTS)
			}
		}
		s.mu.Unlock()
	}

	t.m.clock++
	commitTS := t.m.clock

	var wait func() error
	if t.m.logger != nil && len(t.writes) > 0 {
		writes := make([]LoggedWrite, 0, len(t.writes))
		for k, w := range t.writes {
			writes = append(writes, LoggedWrite{Row: k.row, Deleted: w.deleted, Rec: w.rec})
		}
		sort.Slice(writes, func(i, j int) bool { return writes[i].Row < writes[j].Row })
		w, err := t.m.logger(commitTS, writes)
		if err != nil {
			mAborts.Inc()
			return nil, fmt.Errorf("tx: write-ahead append failed, commit aborted: %w", err)
		}
		wait = w
	}

	for s, keys := range stores {
		s.mu.Lock()
		for _, k := range keys {
			w := t.writes[k]
			s.chains[k.row] = &version{ts: commitTS, rec: w.rec, deleted: w.deleted, next: s.chains[k.row]}
		}
		s.mu.Unlock()
	}
	mCommits.Inc()
	return wait, nil
}

// Abort discards the buffered writes and finishes the transaction.
func (t *Tx) Abort() {
	if t.closed {
		return
	}
	t.closed = true
	t.writes = nil
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	delete(t.m.active, t.id)
	mAborts.Inc()
}
