package tx

import (
	"fmt"

	"hybridstore/internal/schema"
)

// LoggedWrite is one write-set entry handed to a CommitLogger.
type LoggedWrite struct {
	// Row is the row the version installs at.
	Row uint64
	// Deleted marks a delete marker.
	Deleted bool
	// Rec is the after-image (nil when Deleted).
	Rec schema.Record
}

// CommitLogger is the write-ahead hook a durable engine installs on its
// Manager. It is invoked inside the commit critical section — after
// validation succeeded and the commit timestamp was drawn, before any
// version installs — so log append order equals commit-timestamp order.
// It must enqueue the record and return quickly; the returned wait
// function (may be nil) is called after the critical section ends and
// blocks until the record is durable, giving group commit its window
// without serializing concurrent committers. A non-nil error aborts the
// commit: no versions install and the caller sees the error.
type CommitLogger func(commitTS uint64, writes []LoggedWrite) (wait func() error, err error)

// SetCommitLogger installs (or, with nil, removes) the write-ahead hook.
func (m *Manager) SetCommitLogger(l CommitLogger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logger = l
}

// PinSnapshot pins the current clock as a read horizon without opening
// a transaction: until release is called, MinActiveTS will not advance
// past the returned timestamp, so Prune and merge folds cannot drop
// versions a reader of that snapshot (e.g. a checkpoint writer) can
// still see.
func (m *Manager) PinSnapshot() (ts uint64, release func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	id := m.nextID
	m.active[id] = m.clock
	return m.clock, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.active, id)
	}
}

// AdvanceTo raises the logical clock to at least ts. Recovery uses it
// to restore the pre-crash clock before new transactions begin, so
// fresh commit timestamps stay above every replayed one.
func (m *Manager) AdvanceTo(ts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.clock {
		m.clock = ts
	}
}

// InstallAt installs a version of row directly at commit timestamp ts —
// the recovery replay path. Replay must apply commits in their original
// timestamp order; finding an equal or newer version already in the
// chain means the log and store disagree (first-committer-wins was
// violated), which is corruption, not a conflict to skip.
func (s *Store) InstallAt(row uint64, rec schema.Record, deleted bool, ts uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.chains[row]; v != nil && v.ts >= ts {
		return fmt.Errorf("wal replay: row %d already has version at ts %d, replaying ts %d out of order", row, v.ts, ts)
	}
	var r schema.Record
	if !deleted {
		r = rec.Clone()
	}
	s.chains[row] = &version{ts: ts, rec: r, deleted: deleted, next: s.chains[row]}
	return nil
}

// VersionAt returns the newest version of row committed at or before
// ts: its record, delete flag and commit timestamp. ok is false when no
// version is visible.
func (s *Store) VersionAt(row uint64, ts uint64) (rec schema.Record, deleted bool, verTS uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.visible(row, ts)
	if v == nil {
		return nil, false, 0, false
	}
	return v.rec, v.deleted, v.ts, true
}

// RangeVisible calls fn for every row with a version visible at ts,
// passing the visible record, delete flag and its commit timestamp.
// Iteration order is unspecified. fn returning false stops the walk.
// The store lock is held throughout: fn must not call back into the
// store.
func (s *Store) RangeVisible(ts uint64, fn func(row uint64, rec schema.Record, deleted bool, verTS uint64) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for row, v := range s.chains {
		for ; v != nil; v = v.next {
			if v.ts <= ts {
				if !fn(row, v.rec, v.deleted, v.ts) {
					return
				}
				break
			}
		}
	}
}
