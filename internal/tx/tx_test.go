package tx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"hybridstore/internal/schema"
)

func rec(v int64) schema.Record { return schema.Record{schema.IntValue(v)} }

func mustCommit(t *testing.T, x *Tx) {
	t.Helper()
	if err := x.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	if err := x.Write(s, 1, rec(10)); err != nil {
		t.Fatal(err)
	}
	got, err := x.Read(s, 1)
	if err != nil || got[0].I != 10 {
		t.Fatalf("own write invisible: %v, %v", got, err)
	}
	mustCommit(t, x)
}

func TestSnapshotIsolationNoDirtyReads(t *testing.T) {
	m := NewManager()
	s := NewStore()
	w := m.Begin()
	w.Write(s, 1, rec(10))
	r := m.Begin()
	if _, err := r.Read(s, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted write visible: %v", err)
	}
	mustCommit(t, w)
	// r began before w committed: still invisible (repeatable snapshot).
	if _, err := r.Read(s, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot moved: %v", err)
	}
	r2 := m.Begin()
	got, err := r2.Read(s, 1)
	if err != nil || got[0].I != 10 {
		t.Fatalf("committed write invisible to later snapshot: %v, %v", got, err)
	}
}

func TestRepeatableReadAcrossConcurrentCommits(t *testing.T) {
	m := NewManager()
	s := NewStore()
	setup := m.Begin()
	setup.Write(s, 1, rec(1))
	mustCommit(t, setup)

	r := m.Begin()
	first, err := r.Read(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Begin()
	w.Write(s, 1, rec(2))
	mustCommit(t, w)
	second, err := r.Read(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].I != second[0].I {
		t.Fatalf("read not repeatable: %v then %v", first, second)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	m := NewManager()
	s := NewStore()
	a := m.Begin()
	b := m.Begin()
	a.Write(s, 7, rec(1))
	b.Write(s, 7, rec(2))
	mustCommit(t, a)
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	r := m.Begin()
	got, err := r.Read(s, 7)
	if err != nil || got[0].I != 1 {
		t.Fatalf("winner's write lost: %v, %v", got, err)
	}
}

func TestDisjointWritesDoNotConflict(t *testing.T) {
	m := NewManager()
	s := NewStore()
	a := m.Begin()
	b := m.Begin()
	a.Write(s, 1, rec(1))
	b.Write(s, 2, rec(2))
	mustCommit(t, a)
	mustCommit(t, b)
}

func TestDelete(t *testing.T) {
	m := NewManager()
	s := NewStore()
	w := m.Begin()
	w.Write(s, 1, rec(1))
	mustCommit(t, w)

	d := m.Begin()
	if err := d.Delete(s, 1); err != nil {
		t.Fatal(err)
	}
	// Own delete is visible.
	if _, err := d.Read(s, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("own delete invisible: %v", err)
	}
	mustCommit(t, d)
	r := m.Begin()
	if _, err := r.Read(s, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row visible: %v", err)
	}
}

func TestClosedTransaction(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	mustCommit(t, x)
	if _, err := x.Read(s, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after commit: %v", err)
	}
	if err := x.Write(s, 1, rec(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after commit: %v", err)
	}
	if err := x.Delete(s, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after commit: %v", err)
	}
	if err := x.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Commit: %v", err)
	}
	x.Abort() // no-op on closed
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	x.Write(s, 1, rec(1))
	x.Abort()
	r := m.Begin()
	if _, err := r.Read(s, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
}

func TestWriteBufferOverwrites(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	x.Write(s, 1, rec(1))
	x.Write(s, 1, rec(2))
	if x.Pending() != 1 {
		t.Fatalf("Pending = %d", x.Pending())
	}
	mustCommit(t, x)
	r := m.Begin()
	got, _ := r.Read(s, 1)
	if got[0].I != 2 {
		t.Fatalf("last write lost: %v", got)
	}
}

func TestReadReturnsClone(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	x.Write(s, 1, rec(1))
	mustCommit(t, x)
	r := m.Begin()
	got, _ := r.Read(s, 1)
	got[0] = schema.IntValue(99)
	again, _ := r.Read(s, 1)
	if again[0].I != 1 {
		t.Fatal("Read exposed internal record storage")
	}
}

func TestWriteBuffersClone(t *testing.T) {
	m := NewManager()
	s := NewStore()
	x := m.Begin()
	mine := rec(1)
	x.Write(s, 1, mine)
	mine[0] = schema.IntValue(99)
	got, _ := x.Read(s, 1)
	if got[0].I != 1 {
		t.Fatal("Write aliased caller's record")
	}
}

func TestMultiStoreCommit(t *testing.T) {
	m := NewManager()
	s1, s2 := NewStore(), NewStore()
	x := m.Begin()
	x.Write(s1, 1, rec(1))
	x.Write(s2, 1, rec(2))
	mustCommit(t, x)
	r := m.Begin()
	a, _ := r.Read(s1, 1)
	b, _ := r.Read(s2, 1)
	if a[0].I != 1 || b[0].I != 2 {
		t.Fatalf("multi-store commit: %v, %v", a, b)
	}
}

func TestPrune(t *testing.T) {
	m := NewManager()
	s := NewStore()
	for i := 0; i < 5; i++ {
		x := m.Begin()
		x.Write(s, 1, rec(int64(i)))
		mustCommit(t, x)
	}
	if s.Versions() != 5 {
		t.Fatalf("versions = %d", s.Versions())
	}
	s.Prune(m.MinActiveTS())
	if s.Versions() != 1 {
		t.Fatalf("after prune versions = %d, want 1", s.Versions())
	}
	r := m.Begin()
	got, err := r.Read(s, 1)
	if err != nil || got[0].I != 4 {
		t.Fatalf("newest version lost: %v, %v", got, err)
	}
}

func TestPruneRespectsActiveSnapshots(t *testing.T) {
	m := NewManager()
	s := NewStore()
	w1 := m.Begin()
	w1.Write(s, 1, rec(1))
	mustCommit(t, w1)

	oldReader := m.Begin() // snapshot sees version 1

	w2 := m.Begin()
	w2.Write(s, 1, rec(2))
	mustCommit(t, w2)

	s.Prune(m.MinActiveTS())
	got, err := oldReader.Read(s, 1)
	if err != nil || got[0].I != 1 {
		t.Fatalf("prune destroyed a visible version: %v, %v", got, err)
	}
}

func TestPruneRemovesDeadDeletedRows(t *testing.T) {
	m := NewManager()
	s := NewStore()
	w := m.Begin()
	w.Write(s, 1, rec(1))
	mustCommit(t, w)
	d := m.Begin()
	d.Delete(s, 1)
	mustCommit(t, d)
	s.Prune(m.MinActiveTS())
	if s.Rows() != 0 {
		t.Fatalf("dead deleted row kept: rows = %d", s.Rows())
	}
}

func TestLatestTS(t *testing.T) {
	m := NewManager()
	s := NewStore()
	if s.LatestTS(1) != 0 {
		t.Error("empty row has nonzero LatestTS")
	}
	x := m.Begin()
	x.Write(s, 1, rec(1))
	mustCommit(t, x)
	if s.LatestTS(1) == 0 {
		t.Error("LatestTS not updated")
	}
}

func TestMinActiveTS(t *testing.T) {
	m := NewManager()
	if m.MinActiveTS() != 0 {
		t.Error("fresh manager MinActiveTS != clock")
	}
	a := m.Begin()
	w := m.Begin()
	w.Write(NewStore(), 1, rec(1))
	mustCommit(t, w)
	if m.MinActiveTS() != a.SnapshotTS() {
		t.Errorf("MinActiveTS = %d, want %d", m.MinActiveTS(), a.SnapshotTS())
	}
	a.Abort()
	if m.MinActiveTS() != m.Now() {
		t.Errorf("MinActiveTS after abort = %d, want clock %d", m.MinActiveTS(), m.Now())
	}
}

// Concurrent bank-transfer style test: the sum over all accounts must be
// invariant under concurrent conflicting transactions.
func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	m := NewManager()
	s := NewStore()
	const accounts = 8
	const initial = 100
	setup := m.Begin()
	for i := uint64(0); i < accounts; i++ {
		setup.Write(s, i, rec(initial))
	}
	mustCommit(t, setup)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				x := m.Begin()
				from := uint64((g + i) % accounts)
				to := uint64((g + i + 1) % accounts)
				a, err1 := x.Read(s, from)
				b, err2 := x.Read(s, to)
				if err1 != nil || err2 != nil {
					x.Abort()
					continue
				}
				x.Write(s, from, rec(a[0].I-1))
				x.Write(s, to, rec(b[0].I+1))
				_ = x.Commit() // conflicts abort the whole transfer
			}
		}(g)
	}
	wg.Wait()

	r := m.Begin()
	var total int64
	for i := uint64(0); i < accounts; i++ {
		v, err := r.Read(s, i)
		if err != nil {
			t.Fatal(err)
		}
		total += v[0].I
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (atomicity violated)", total, accounts*initial)
	}
}

// Property: a reader's view of any row never changes during its lifetime,
// regardless of interleaved committers.
func TestQuickSnapshotStability(t *testing.T) {
	f := func(writes []uint8) bool {
		m := NewManager()
		s := NewStore()
		init := m.Begin()
		for i := uint64(0); i < 4; i++ {
			init.Write(s, i, rec(int64(i)))
		}
		if init.Commit() != nil {
			return false
		}
		reader := m.Begin()
		before := make(map[uint64]int64)
		for i := uint64(0); i < 4; i++ {
			v, err := reader.Read(s, i)
			if err != nil {
				return false
			}
			before[i] = v[0].I
		}
		for _, w := range writes {
			x := m.Begin()
			x.Write(s, uint64(w%4), rec(int64(w)))
			if x.Commit() != nil {
				return false
			}
		}
		for i := uint64(0); i < 4; i++ {
			v, err := reader.Read(s, i)
			if err != nil || v[0].I != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of committed writes and a full prune, each
// surviving row holds exactly one version (the newest).
func TestQuickPruneKeepsNewest(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager()
		s := NewStore()
		want := make(map[uint64]int64)
		for _, op := range ops {
			row := uint64(op % 8)
			x := m.Begin()
			x.Write(s, row, rec(int64(op)))
			if x.Commit() != nil {
				return false
			}
			want[row] = int64(op)
		}
		s.Prune(m.MinActiveTS())
		if s.Versions() != len(want) {
			return false
		}
		r := m.Begin()
		for row, v := range want {
			got, err := r.Read(s, row)
			if err != nil || got[0].I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func ExampleTx() {
	m := NewManager()
	s := NewStore()
	w := m.Begin()
	w.Write(s, 0, schema.Record{schema.IntValue(42)})
	if err := w.Commit(); err != nil {
		fmt.Println("commit failed:", err)
		return
	}
	r := m.Begin()
	recV, _ := r.Read(s, 0)
	fmt.Println(recV)
	// Output: [42]
}
