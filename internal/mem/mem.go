// Package mem models the memory spaces of a heterogeneous single-node
// platform: host main memory, device (GPU) global memory, and secondary
// storage. The paper's challenges (a.i)–(a.iii) — expensive transfers,
// different memory types per compute platform, and strict device capacity
// limits — are made concrete here: every fragment of every storage engine
// allocates its bytes from a Space-tagged Allocator, device allocators are
// capacity-limited, and cross-space copies are only possible through the
// transfer paths in package device, which charge simulated bus time.
package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Space identifies where bytes physically live.
type Space uint8

// The memory spaces of the modelled platform.
const (
	// Host is CPU-attached main memory.
	Host Space = iota
	// Device is GPU-attached global memory (capacity limited, reachable
	// from the host only via the simulated bus).
	Device
	// Secondary is disk/flash storage (modelled for the disk-based
	// engines PAX, Fractured Mirrors and ES²).
	Secondary
)

// String names the space.
func (s Space) String() string {
	switch s {
	case Host:
		return "host"
	case Device:
		return "device"
	case Secondary:
		return "secondary"
	default:
		return fmt.Sprintf("Space(%d)", uint8(s))
	}
}

// ErrOutOfMemory is returned when an allocation would exceed an allocator's
// capacity. Engines with device-resident data must handle it: CoGaDB's
// "all or nothing" column placement (Section IV-B.3) falls back to host
// memory exactly when this error occurs.
var ErrOutOfMemory = errors.New("mem: out of memory")

// ErrBadSize is returned for non-positive allocation sizes.
var ErrBadSize = errors.New("mem: allocation size must be positive")

// Allocator hands out byte blocks from a single memory space, enforcing an
// optional capacity. It is safe for concurrent use.
type Allocator struct {
	space    Space
	capacity int64 // 0 means unlimited
	used     atomic.Int64
	allocs   atomic.Int64
	frees    atomic.Int64
	peak     atomic.Int64
}

// NewAllocator creates an allocator for the given space. capacity is the
// byte limit; 0 means unlimited (typical for host memory in this model).
func NewAllocator(space Space, capacity int64) *Allocator {
	return &Allocator{space: space, capacity: capacity}
}

// Space returns the allocator's memory space.
func (a *Allocator) Space() Space { return a.space }

// Capacity returns the configured byte limit (0 = unlimited).
func (a *Allocator) Capacity() int64 { return a.capacity }

// Used returns the bytes currently allocated.
func (a *Allocator) Used() int64 { return a.used.Load() }

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() int64 { return a.peak.Load() }

// Available returns the bytes still allocatable, or -1 if unlimited.
func (a *Allocator) Available() int64 {
	if a.capacity == 0 {
		return -1
	}
	avail := a.capacity - a.used.Load()
	if avail < 0 {
		avail = 0
	}
	return avail
}

// Stats summarizes allocator activity.
type Stats struct {
	Space  Space
	Used   int64
	Peak   int64
	Allocs int64
	Frees  int64
}

// Stats returns a snapshot of the allocator's counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Space:  a.space,
		Used:   a.used.Load(),
		Peak:   a.peak.Load(),
		Allocs: a.allocs.Load(),
		Frees:  a.frees.Load(),
	}
}

// Alloc reserves n bytes and returns the backing block. It fails with
// ErrOutOfMemory when the capacity would be exceeded.
func (a *Allocator) Alloc(n int) (*Block, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	for {
		used := a.used.Load()
		if a.capacity > 0 && used+int64(n) > a.capacity {
			return nil, fmt.Errorf("%w: %s space: need %d, used %d of %d",
				ErrOutOfMemory, a.space, n, used, a.capacity)
		}
		if a.used.CompareAndSwap(used, used+int64(n)) {
			break
		}
	}
	a.allocs.Add(1)
	for {
		peak := a.peak.Load()
		used := a.used.Load()
		if used <= peak || a.peak.CompareAndSwap(peak, used) {
			break
		}
	}
	return &Block{buf: make([]byte, n), alloc: a}, nil
}

// Block is a contiguous byte region owned by an allocator.
type Block struct {
	buf   []byte
	alloc *Allocator
	freed sync.Once
}

// Bytes returns the block's backing bytes. Callers must not retain the
// slice past Free.
func (b *Block) Bytes() []byte { return b.buf }

// Len returns the block size in bytes.
func (b *Block) Len() int { return len(b.buf) }

// Space returns the memory space the block lives in.
func (b *Block) Space() Space { return b.alloc.space }

// Free returns the block's bytes to the allocator. Free is idempotent.
func (b *Block) Free() {
	b.freed.Do(func() {
		b.alloc.used.Add(-int64(len(b.buf)))
		b.alloc.frees.Add(1)
		b.buf = nil
	})
}

// Grow allocates a new block of at least n bytes, copies the current
// contents into it, frees the old block, and returns the new one. It is a
// convenience for append-style fragment growth.
func (b *Block) Grow(n int) (*Block, error) {
	if n <= len(b.buf) {
		return b, nil
	}
	nb, err := b.alloc.Alloc(n)
	if err != nil {
		return nil, err
	}
	copy(nb.buf, b.buf)
	b.Free()
	return nb, nil
}
