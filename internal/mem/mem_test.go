package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocWithinCapacity(t *testing.T) {
	a := NewAllocator(Device, 100)
	b, err := a.Alloc(60)
	if err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if b.Len() != 60 || b.Space() != Device {
		t.Fatalf("block = %d bytes in %v, want 60 in device", b.Len(), b.Space())
	}
	if a.Used() != 60 {
		t.Errorf("Used = %d, want 60", a.Used())
	}
	if a.Available() != 40 {
		t.Errorf("Available = %d, want 40", a.Available())
	}
}

func TestAllocExceedsCapacity(t *testing.T) {
	a := NewAllocator(Device, 100)
	if _, err := a.Alloc(101); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if a.Used() != 0 {
		t.Errorf("failed alloc changed Used to %d", a.Used())
	}
}

func TestAllocUnlimited(t *testing.T) {
	a := NewAllocator(Host, 0)
	if _, err := a.Alloc(1 << 20); err != nil {
		t.Fatalf("unlimited Alloc: %v", err)
	}
	if a.Available() != -1 {
		t.Errorf("Available = %d, want -1 for unlimited", a.Available())
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	a := NewAllocator(Host, 0)
	for _, n := range []int{0, -5} {
		if _, err := a.Alloc(n); !errors.Is(err, ErrBadSize) {
			t.Errorf("Alloc(%d) err = %v, want ErrBadSize", n, err)
		}
	}
}

func TestFreeReturnsBytes(t *testing.T) {
	a := NewAllocator(Device, 100)
	b, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("expected full allocator")
	}
	b.Free()
	if a.Used() != 0 {
		t.Fatalf("Used after Free = %d, want 0", a.Used())
	}
	if _, err := a.Alloc(100); err != nil {
		t.Fatalf("Alloc after Free: %v", err)
	}
}

func TestFreeIsIdempotent(t *testing.T) {
	a := NewAllocator(Host, 0)
	b, _ := a.Alloc(10)
	b.Free()
	b.Free()
	if a.Used() != 0 {
		t.Fatalf("double Free corrupted accounting: Used = %d", a.Used())
	}
	if a.Stats().Frees != 1 {
		t.Fatalf("Frees = %d, want 1", a.Stats().Frees)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	a := NewAllocator(Host, 0)
	b1, _ := a.Alloc(30)
	b2, _ := a.Alloc(50)
	b1.Free()
	b2.Free()
	if a.Peak() != 80 {
		t.Fatalf("Peak = %d, want 80", a.Peak())
	}
}

func TestStatsSnapshot(t *testing.T) {
	a := NewAllocator(Secondary, 0)
	b, _ := a.Alloc(7)
	b.Free()
	s := a.Stats()
	if s.Space != Secondary || s.Allocs != 1 || s.Frees != 1 || s.Used != 0 || s.Peak != 7 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestGrowCopiesAndFrees(t *testing.T) {
	a := NewAllocator(Host, 0)
	b, _ := a.Alloc(4)
	copy(b.Bytes(), "abcd")
	nb, err := b.Grow(8)
	if err != nil {
		t.Fatal(err)
	}
	if string(nb.Bytes()[:4]) != "abcd" {
		t.Errorf("Grow lost contents: %q", nb.Bytes())
	}
	if a.Used() != 8 {
		t.Errorf("Used = %d, want 8 (old block freed)", a.Used())
	}
	same, err := nb.Grow(8)
	if err != nil || same != nb {
		t.Errorf("Grow to same size should be a no-op, got %v, %v", same, err)
	}
}

func TestGrowRespectsCapacity(t *testing.T) {
	a := NewAllocator(Device, 10)
	b, _ := a.Alloc(8)
	if _, err := b.Grow(16); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if a.Used() != 8 {
		t.Errorf("failed Grow changed Used to %d", a.Used())
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := NewAllocator(Device, 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b, err := a.Alloc(64)
				if err != nil {
					continue
				}
				b.Free()
			}
		}()
	}
	wg.Wait()
	if a.Used() != 0 {
		t.Fatalf("Used after concurrent churn = %d, want 0", a.Used())
	}
}

func TestSpaceString(t *testing.T) {
	cases := map[Space]string{Host: "host", Device: "device", Secondary: "secondary", Space(9): "Space(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

// Property: for any sequence of alloc sizes within capacity, Used equals
// the sum of live block sizes.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewAllocator(Device, 1<<16)
		var live []*Block
		var sum int64
		for _, s := range sizes {
			n := int(s)%512 + 1
			b, err := a.Alloc(n)
			if err != nil {
				continue
			}
			live = append(live, b)
			sum += int64(n)
			if a.Used() != sum {
				return false
			}
		}
		for _, b := range live {
			sum -= int64(b.Len())
			b.Free()
			if a.Used() != sum {
				return false
			}
		}
		return a.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
