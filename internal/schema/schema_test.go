package schema

import (
	"errors"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		Int64Attr("id"),
		CharAttr("name", 12),
		Float64Attr("price"),
		Int32Attr("qty"),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewComputesOffsetsAndWidth(t *testing.T) {
	s := testSchema(t)
	if got := s.Arity(); got != 4 {
		t.Fatalf("Arity = %d, want 4", got)
	}
	wantOffsets := []int{0, 8, 20, 28}
	for i, w := range wantOffsets {
		if got := s.Offset(i); got != w {
			t.Errorf("Offset(%d) = %d, want %d", i, got, w)
		}
	}
	if got := s.Width(); got != 32 {
		t.Errorf("Width = %d, want 32", got)
	}
}

func TestNewRejectsEmptySchema(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrEmptySchema) {
		t.Fatalf("err = %v, want ErrEmptySchema", err)
	}
}

func TestNewRejectsEmptyName(t *testing.T) {
	if _, err := New(Attribute{Name: "", Kind: Int64, Size: 8}); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("err = %v, want ErrBadAttribute", err)
	}
}

func TestNewRejectsWrongFixedSize(t *testing.T) {
	if _, err := New(Attribute{Name: "a", Kind: Int64, Size: 4}); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("err = %v, want ErrBadAttribute", err)
	}
}

func TestNewRejectsZeroWidthChar(t *testing.T) {
	if _, err := New(Attribute{Name: "a", Kind: Char, Size: 0}); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("err = %v, want ErrBadAttribute", err)
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	if _, err := New(Attribute{Name: "a", Kind: Kind(99), Size: 8}); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("err = %v, want ErrBadAttribute", err)
	}
}

func TestNewRejectsDuplicateNames(t *testing.T) {
	if _, err := New(Int64Attr("a"), Float64Attr("a")); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
}

func TestIndexOf(t *testing.T) {
	s := testSchema(t)
	if got := s.IndexOf("price"); got != 2 {
		t.Errorf("IndexOf(price) = %d, want 2", got)
	}
	if got := s.IndexOf("missing"); got != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", got)
	}
}

func TestProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Arity() != 2 || p.Attr(0).Name != "price" || p.Attr(1).Name != "id" {
		t.Fatalf("Project produced %v", p)
	}
	if p.Width() != 16 {
		t.Errorf("projected width = %d, want 16", p.Width())
	}
	if _, err := s.Project([]int{4}); err == nil {
		t.Error("Project with out-of-range index succeeded, want error")
	}
	if _, err := s.Project([]int{-1}); err == nil {
		t.Error("Project with negative index succeeded, want error")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas reported unequal")
	}
	c := MustNew(Int64Attr("id"))
	if a.Equal(c) {
		t.Error("different schemas reported equal")
	}
	var nilSchema *Schema
	if a.Equal(nilSchema) || nilSchema.Equal(a) {
		t.Error("nil comparison should be false")
	}
	if !nilSchema.Equal(nil) {
		t.Error("nil.Equal(nil) should be true")
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	got := s.String()
	for _, want := range []string{"id INT64", "name CHAR(12)", "price FLOAT64", "qty INT32"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid schema did not panic")
		}
	}()
	MustNew()
}

func TestAttrsReturnsCopy(t *testing.T) {
	s := testSchema(t)
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "id" {
		t.Error("Attrs() exposed internal state")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Int32: "INT32", Int64: "INT64", Float64: "FLOAT64", Char: "CHAR", Kind(42): "Kind(42)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
