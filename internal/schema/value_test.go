package schema

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeValueRoundTrip(t *testing.T) {
	cases := []struct {
		attr Attribute
		val  Value
	}{
		{Int32Attr("a"), Int32Value(-12345)},
		{Int32Attr("a"), Int32Value(math.MaxInt32)},
		{Int64Attr("a"), IntValue(math.MinInt64)},
		{Float64Attr("a"), FloatValue(3.14159)},
		{Float64Attr("a"), FloatValue(math.Inf(-1))},
		{CharAttr("a", 8), CharValue("abc")},
		{CharAttr("a", 8), CharValue("12345678")},
		{CharAttr("a", 3), CharValue("")},
	}
	for _, c := range cases {
		buf := make([]byte, c.attr.Size)
		if err := EncodeValue(buf, c.attr, c.val); err != nil {
			t.Fatalf("EncodeValue(%v, %v): %v", c.attr, c.val, err)
		}
		got, err := DecodeValue(buf, c.attr)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", c.attr, err)
		}
		if !got.Equal(c.val) {
			t.Errorf("round trip %v via %v = %v", c.val, c.attr, got)
		}
	}
}

func TestEncodeValueErrors(t *testing.T) {
	a := Int64Attr("a")
	if err := EncodeValue(make([]byte, 4), a, IntValue(1)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short buffer: err = %v, want ErrShortBuffer", err)
	}
	if err := EncodeValue(make([]byte, 8), a, FloatValue(1)); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("kind mismatch: err = %v, want ErrKindMismatch", err)
	}
	c := CharAttr("c", 2)
	if err := EncodeValue(make([]byte, 2), c, CharValue("abc")); !errors.Is(err, ErrCharTooLong) {
		t.Errorf("long char: err = %v, want ErrCharTooLong", err)
	}
}

func TestDecodeValueShortBuffer(t *testing.T) {
	if _, err := DecodeValue(make([]byte, 2), Int64Attr("a")); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", err)
	}
}

func TestEncodeValueOverwritesStaleCharBytes(t *testing.T) {
	a := CharAttr("c", 6)
	buf := []byte{'x', 'x', 'x', 'x', 'x', 'x'}
	if err := EncodeValue(buf, a, CharValue("ab")); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeValue(buf, a)
	if err != nil {
		t.Fatal(err)
	}
	if got.S != "ab" {
		t.Errorf("decoded %q, want %q (stale bytes not cleared)", got.S, "ab")
	}
}

func TestValueEqual(t *testing.T) {
	if !FloatValue(math.NaN()).Equal(FloatValue(math.NaN())) {
		t.Error("NaN should equal NaN under Value.Equal")
	}
	if IntValue(1).Equal(FloatValue(1)) {
		t.Error("different kinds should not be equal")
	}
	if !CharValue("x").Equal(CharValue("x")) {
		t.Error("equal chars reported unequal")
	}
}

func TestValueLess(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{IntValue(1), IntValue(2), true},
		{IntValue(2), IntValue(1), false},
		{FloatValue(1.5), FloatValue(2.5), true},
		{CharValue("a"), CharValue("b"), true},
		{Int32Value(1), IntValue(1), true}, // kind tag ordering
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	s := testSchema(t)
	rec := Record{IntValue(42), CharValue("widget"), FloatValue(9.99), Int32Value(7)}
	buf := make([]byte, s.Width())
	if err := EncodeRecord(buf, s, rec); err != nil {
		t.Fatalf("EncodeRecord: %v", err)
	}
	got, err := DecodeRecord(buf, s)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if !got.Equal(rec) {
		t.Errorf("round trip = %v, want %v", got, rec)
	}
}

func TestEncodeRecordErrors(t *testing.T) {
	s := testSchema(t)
	if err := EncodeRecord(make([]byte, s.Width()), s, Record{IntValue(1)}); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("arity: err = %v, want ErrArityMismatch", err)
	}
	rec := Record{IntValue(42), CharValue("w"), FloatValue(1), Int32Value(7)}
	if err := EncodeRecord(make([]byte, 4), s, rec); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short: err = %v, want ErrShortBuffer", err)
	}
}

func TestDecodeRecordShortBuffer(t *testing.T) {
	s := testSchema(t)
	if _, err := DecodeRecord(make([]byte, 4), s); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", err)
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := Record{IntValue(1), CharValue("a")}
	c := r.Clone()
	c[0] = IntValue(2)
	if r[0].I != 1 {
		t.Error("Clone shares backing storage")
	}
}

// randomRecord builds a random record for s; shared with other tests in
// this package via export_test-style reuse.
func randomRecord(r *rand.Rand, s *Schema) Record {
	rec := make(Record, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		switch a.Kind {
		case Int32:
			rec[i] = Int32Value(int32(r.Int63()))
		case Int64:
			rec[i] = IntValue(r.Int63() - r.Int63())
		case Float64:
			rec[i] = FloatValue(r.NormFloat64() * 1e6)
		case Char:
			n := r.Intn(a.Size + 1)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + r.Intn(26))
			}
			rec[i] = CharValue(string(b))
		}
	}
	return rec
}

func TestQuickRecordRoundTrip(t *testing.T) {
	s := testSchema(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := randomRecord(r, s)
		buf := make([]byte, s.Width())
		if err := EncodeRecord(buf, s, rec); err != nil {
			return false
		}
		got, err := DecodeRecord(buf, s)
		return err == nil && got.Equal(rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValueRoundTripAllKinds(t *testing.T) {
	attrs := []Attribute{Int32Attr("a"), Int64Attr("b"), Float64Attr("c"), CharAttr("d", 16)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, a := range attrs {
			s := MustNew(a)
			v := randomRecord(r, s)[0]
			buf := make([]byte, a.Size)
			if err := EncodeValue(buf, a, v); err != nil {
				return false
			}
			got, err := DecodeValue(buf, a)
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringFormats(t *testing.T) {
	cases := map[string]Value{
		"42":   IntValue(42),
		"1.5":  FloatValue(1.5),
		`"ab"`: CharValue("ab"),
		"-7":   Int32Value(-7),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := Record{IntValue(1), CharValue("x")}
	if got, want := r.String(), `[1 "x"]`; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Ensure Kind values used in reflection-based tests stay distinct.
func TestKindsDistinct(t *testing.T) {
	kinds := []Kind{Int32, Int64, Float64, Char}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind value %d", k)
		}
		seen[k] = true
	}
	if !reflect.DeepEqual(len(seen), 4) {
		t.Fatal("expected 4 distinct kinds")
	}
}
