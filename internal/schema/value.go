package schema

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Value is a dynamically-typed field value. It is a small tagged union kept
// allocation-free for the numeric kinds; Char values carry a string.
type Value struct {
	// Kind tags which member is valid.
	Kind Kind
	// I holds Int32 and Int64 payloads.
	I int64
	// F holds Float64 payloads.
	F float64
	// S holds Char payloads (unpadded).
	S string
}

// IntValue returns an Int64 value.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// Int32Value returns an Int32 value.
func Int32Value(v int32) Value { return Value{Kind: Int32, I: int64(v)} }

// FloatValue returns a Float64 value.
func FloatValue(v float64) Value { return Value{Kind: Float64, F: v} }

// CharValue returns a Char value.
func CharValue(v string) Value { return Value{Kind: Char, S: v} }

// String renders the value for debugging and harness output.
func (v Value) String() string {
	switch v.Kind {
	case Int32, Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case Char:
		return fmt.Sprintf("%q", v.S)
	default:
		return fmt.Sprintf("Value{kind=%d}", v.Kind)
	}
}

// Equal reports semantic equality (same kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Int32, Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	case Char:
		return v.S == o.S
	default:
		return false
	}
}

// Less orders values of the same kind; Char compares lexicographically.
// Values of different kinds order by kind tag (total order for sorting).
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case Int32, Int64:
		return v.I < o.I
	case Float64:
		return v.F < o.F
	case Char:
		return v.S < o.S
	default:
		return false
	}
}

// Encoding errors.
var (
	// ErrKindMismatch is returned when a value's kind does not match the
	// attribute it is encoded into.
	ErrKindMismatch = errors.New("schema: value kind does not match attribute")
	// ErrCharTooLong is returned when a Char value exceeds the attribute width.
	ErrCharTooLong = errors.New("schema: char value exceeds attribute width")
	// ErrShortBuffer is returned when the destination or source buffer is
	// smaller than the attribute size.
	ErrShortBuffer = errors.New("schema: buffer shorter than attribute size")
)

// ValidateValue checks that v can be encoded under a without writing
// anywhere: the kinds must match and CHAR payloads must fit. Engines
// call it before logging a write so the WAL only ever holds records
// that will apply.
func ValidateValue(a Attribute, v Value) error {
	if v.Kind != a.Kind {
		return fmt.Errorf("%w: attribute %s is %s, value is %s", ErrKindMismatch, a.Name, a.Kind, v.Kind)
	}
	switch a.Kind {
	case Int32, Int64, Float64:
	case Char:
		if len(v.S) > a.Size {
			return fmt.Errorf("%w: %q into CHAR(%d)", ErrCharTooLong, v.S, a.Size)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadAttribute, a.Kind)
	}
	return nil
}

// ValidateRecord applies ValidateValue across a record positionally
// aligned with s's attributes, checking arity first.
func ValidateRecord(s *Schema, rec Record) error {
	if len(rec) != s.Arity() {
		return fmt.Errorf("%w: arity %d vs schema %d", ErrArityMismatch, len(rec), s.Arity())
	}
	for i, v := range rec {
		if err := ValidateValue(s.Attr(i), v); err != nil {
			return err
		}
	}
	return nil
}

// EncodeValue writes v into dst according to a. dst must be at least a.Size
// bytes; only the first a.Size bytes are written.
func EncodeValue(dst []byte, a Attribute, v Value) error {
	if len(dst) < a.Size {
		return fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, a.Size, len(dst))
	}
	if err := ValidateValue(a, v); err != nil {
		return err
	}
	switch a.Kind {
	case Int32:
		binary.LittleEndian.PutUint32(dst, uint32(int32(v.I)))
	case Int64:
		binary.LittleEndian.PutUint64(dst, uint64(v.I))
	case Float64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v.F))
	case Char:
		n := copy(dst[:a.Size], v.S)
		for i := n; i < a.Size; i++ {
			dst[i] = 0
		}
	}
	return nil
}

// DecodeValue reads a value of attribute a from src. src must be at least
// a.Size bytes.
func DecodeValue(src []byte, a Attribute) (Value, error) {
	if len(src) < a.Size {
		return Value{}, fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, a.Size, len(src))
	}
	switch a.Kind {
	case Int32:
		return Value{Kind: Int32, I: int64(int32(binary.LittleEndian.Uint32(src)))}, nil
	case Int64:
		return Value{Kind: Int64, I: int64(binary.LittleEndian.Uint64(src))}, nil
	case Float64:
		return Value{Kind: Float64, F: math.Float64frombits(binary.LittleEndian.Uint64(src))}, nil
	case Char:
		return Value{Kind: Char, S: strings.TrimRight(string(src[:a.Size]), "\x00")}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %d", ErrBadAttribute, a.Kind)
	}
}

// Record is one tuple's values, positionally aligned with a schema.
type Record []Value

// ErrArityMismatch is returned when a record's length differs from the
// schema arity.
var ErrArityMismatch = errors.New("schema: record arity does not match schema")

// EncodeRecord writes the record in NSM order into dst, which must be at
// least s.Width() bytes.
func EncodeRecord(dst []byte, s *Schema, rec Record) error {
	if len(rec) != s.Arity() {
		return fmt.Errorf("%w: schema arity %d, record has %d values", ErrArityMismatch, s.Arity(), len(rec))
	}
	if len(dst) < s.Width() {
		return fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, s.Width(), len(dst))
	}
	for i, v := range rec {
		if err := EncodeValue(dst[s.Offset(i):], s.Attr(i), v); err != nil {
			return fmt.Errorf("attribute %d: %w", i, err)
		}
	}
	return nil
}

// DecodeRecord reads a full NSM record from src.
func DecodeRecord(src []byte, s *Schema) (Record, error) {
	if len(src) < s.Width() {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrShortBuffer, s.Width(), len(src))
	}
	rec := make(Record, s.Arity())
	for i := range rec {
		v, err := DecodeValue(src[s.Offset(i):], s.Attr(i))
		if err != nil {
			return nil, fmt.Errorf("attribute %d: %w", i, err)
		}
		rec[i] = v
	}
	return rec, nil
}

// Equal reports whether two records are value-wise equal.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// String renders the record as "[v1 v2 ...]".
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range r {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}
