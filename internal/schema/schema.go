// Package schema defines attribute types, relation schemas and typed values
// with a fixed-width binary encoding.
//
// The storage engines in this module store tuplets as raw bytes so that the
// NSM/DSM linearizations discussed in the paper (Pinnecke et al., ICDE 2017,
// Section II-A) are physically real: a record occupies exactly
// Schema.Width() consecutive bytes under NSM, and a column of n records
// occupies n*attr.Size consecutive bytes under DSM. All encodings are
// little-endian via encoding/binary.
package schema

import (
	"errors"
	"fmt"
	"strings"
)

// Kind enumerates the supported attribute types. All kinds are fixed-width,
// which keeps tuplet geometry static — a prerequisite for the byte-exact
// layout experiments in the benchmark harness.
type Kind uint8

// Supported attribute kinds.
const (
	// Int32 is a 32-bit signed integer (4 bytes).
	Int32 Kind = iota
	// Int64 is a 64-bit signed integer (8 bytes).
	Int64
	// Float64 is an IEEE-754 double (8 bytes).
	Float64
	// Char is a fixed-width character field; its width is given per
	// attribute. Shorter strings are zero-padded, longer ones rejected.
	Char
)

// String returns the SQL-flavoured name of the kind.
func (k Kind) String() string {
	switch k {
	case Int32:
		return "INT32"
	case Int64:
		return "INT64"
	case Float64:
		return "FLOAT64"
	case Char:
		return "CHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FixedSize returns the encoded size of the kind in bytes, or 0 if the size
// is per-attribute (Char).
func (k Kind) FixedSize() int {
	switch k {
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// Attribute describes a single column of a relation.
type Attribute struct {
	// Name is the attribute name; must be non-empty and unique in a schema.
	Name string
	// Kind is the attribute type.
	Kind Kind
	// Size is the encoded width in bytes. For Char it must be set
	// explicitly (>0); for all other kinds it is derived from the Kind.
	Size int
}

// Int32Attr returns a 4-byte integer attribute.
func Int32Attr(name string) Attribute { return Attribute{Name: name, Kind: Int32, Size: 4} }

// Int64Attr returns an 8-byte integer attribute.
func Int64Attr(name string) Attribute { return Attribute{Name: name, Kind: Int64, Size: 8} }

// Float64Attr returns an 8-byte floating-point attribute.
func Float64Attr(name string) Attribute { return Attribute{Name: name, Kind: Float64, Size: 8} }

// CharAttr returns a fixed-width character attribute of n bytes.
func CharAttr(name string, n int) Attribute { return Attribute{Name: name, Kind: Char, Size: n} }

// String renders the attribute as "name TYPE(size)".
func (a Attribute) String() string {
	if a.Kind == Char {
		return fmt.Sprintf("%s CHAR(%d)", a.Name, a.Size)
	}
	return fmt.Sprintf("%s %s", a.Name, a.Kind)
}

// Validation errors returned by New.
var (
	// ErrEmptySchema is returned when a schema has no attributes.
	ErrEmptySchema = errors.New("schema: no attributes")
	// ErrBadAttribute is returned when an attribute is malformed.
	ErrBadAttribute = errors.New("schema: bad attribute")
	// ErrDuplicateName is returned when two attributes share a name.
	ErrDuplicateName = errors.New("schema: duplicate attribute name")
)

// Schema is an ordered list of attributes together with the derived NSM
// byte offsets. Schemas are immutable after construction.
type Schema struct {
	attrs   []Attribute
	offsets []int
	width   int
	index   map[string]int
}

// New validates the attributes and builds a schema. The NSM record width is
// the sum of the attribute sizes (no alignment padding — the paper's record
// geometry, e.g. 96 bytes for 21 customer fields, is densely packed).
func New(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		attrs:   make([]Attribute, len(attrs)),
		offsets: make([]int, len(attrs)),
		index:   make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: attribute %d has empty name", ErrBadAttribute, i)
		}
		if fixed := a.Kind.FixedSize(); fixed != 0 && a.Size != fixed {
			return nil, fmt.Errorf("%w: %s must have size %d, got %d", ErrBadAttribute, a.Name, fixed, a.Size)
		}
		if a.Kind == Char && a.Size <= 0 {
			return nil, fmt.Errorf("%w: %s CHAR requires positive size", ErrBadAttribute, a.Name)
		}
		if a.Kind > Char {
			return nil, fmt.Errorf("%w: %s has unknown kind %d", ErrBadAttribute, a.Name, a.Kind)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateName, a.Name)
		}
		s.index[a.Name] = i
		s.offsets[i] = s.width
		s.width += a.Size
	}
	return s, nil
}

// MustNew is New that panics on error; for statically-known schemas.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Width returns the NSM record width in bytes.
func (s *Schema) Width() int { return s.width }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Offset returns the byte offset of attribute i inside an NSM record.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// IndexOf returns the position of the named attribute, or -1.
func (s *Schema) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Project builds a new schema from the given attribute indexes (in the
// given order). It returns an error if any index is out of range.
func (s *Schema) Project(cols []int) (*Schema, error) {
	attrs := make([]Attribute, 0, len(cols))
	for _, c := range cols {
		if c < 0 || c >= len(s.attrs) {
			return nil, fmt.Errorf("%w: projection index %d out of range [0,%d)", ErrBadAttribute, c, len(s.attrs))
		}
		attrs = append(attrs, s.attrs[c])
	}
	return New(attrs...)
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INT64, b CHAR(8), ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}
