// Package workload provides the data and query workloads of the paper's
// experiment: TPC-C-flavoured customer and item tables with the exact
// record geometry of Section II-B (a customer record is 96 bytes over 21
// fields; an item record is 20 bytes over 4 fields plus an 8-byte price),
// deterministic generators with closed-form expected aggregates, HTAP
// operation traces mixing record-centric and attribute-centric access,
// and the access-pattern monitor that responsive storage engines consume
// to re-organize layouts.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridstore/internal/schema"
)

// CustomerSchema returns the paper's customer table: 21 fields, 96 bytes
// per record, TPC-C-flavoured.
func CustomerSchema() *schema.Schema {
	return schema.MustNew(
		schema.Int64Attr("c_id"),           // 8
		schema.Int32Attr("c_d_id"),         // 4
		schema.Int32Attr("c_w_id"),         // 4
		schema.CharAttr("c_first", 4),      // 4
		schema.CharAttr("c_middle", 2),     // 2
		schema.CharAttr("c_last", 4),       // 4
		schema.CharAttr("c_street_1", 4),   // 4
		schema.CharAttr("c_street_2", 4),   // 4
		schema.CharAttr("c_city", 4),       // 4
		schema.CharAttr("c_state", 2),      // 2
		schema.CharAttr("c_zip", 4),        // 4
		schema.CharAttr("c_phone", 4),      // 4
		schema.Int64Attr("c_since"),        // 8
		schema.CharAttr("c_credit", 2),     // 2
		schema.Float64Attr("c_credit_lim"), // 8
		schema.Float64Attr("c_discount"),   // 8
		schema.Float64Attr("c_balance"),    // 8
		schema.Int32Attr("c_ytd_payment"),  // 4
		schema.Int32Attr("c_payment_cnt"),  // 4
		schema.Int32Attr("c_delivery_cnt"), // 4
		schema.CharAttr("c_flags", 2),      // 2  → 96 bytes, 21 fields
	)
}

// ItemSchema returns the paper's item table: 4 fields totalling 20 bytes
// plus the 8-byte price field (28 bytes, 5 attributes). The price column
// index is ItemPriceCol.
func ItemSchema() *schema.Schema {
	return schema.MustNew(
		schema.Int64Attr("i_id"),      // 8
		schema.Int32Attr("i_im_id"),   // 4
		schema.CharAttr("i_name", 6),  // 6
		schema.CharAttr("i_data", 2),  // 2  → 20 bytes of non-price fields
		schema.Float64Attr("i_price"), // 8
	)
}

// Column indexes into ItemSchema and CustomerSchema used by the harness.
const (
	// ItemPriceCol is the price attribute of the item table.
	ItemPriceCol = 4
	// ItemIDCol is the primary key of the item table.
	ItemIDCol = 0
	// CustomerIDCol is the primary key of the customer table.
	CustomerIDCol = 0
	// CustomerBalanceCol is the balance attribute of the customer table.
	CustomerBalanceCol = 16
)

// ItemPrice is the deterministic price of item i: i%10000/100 + 1, giving
// prices in [1, 100.99] with a closed-form sum (ExpectedItemPriceSum) so
// every engine's aggregate can be verified exactly.
func ItemPrice(i uint64) float64 {
	return float64(i%10000)/100 + 1
}

// ExpectedItemPriceSum returns the exact sum of ItemPrice(0..n-1).
func ExpectedItemPriceSum(n uint64) float64 {
	full := n / 10000
	rem := n % 10000
	// Sum over one full period of i/100 for i in [0,10000).
	const periodSum = 9999 * 10000 / 2.0 / 100
	sum := float64(full) * periodSum
	sum += float64(rem*(rem-1)) / 2 / 100
	return sum + float64(n) // the +1 per item
}

// Item returns the deterministic record of item i.
func Item(i uint64) schema.Record {
	return schema.Record{
		schema.IntValue(int64(i)),
		schema.Int32Value(int32(i % 100000)),
		schema.CharValue(shortName("itm", i)),
		schema.CharValue(pick2(i)),
		schema.FloatValue(ItemPrice(i)),
	}
}

// CustomerBalance is the deterministic balance of customer i.
func CustomerBalance(i uint64) float64 {
	return float64(i%5000) - 10
}

// ExpectedCustomerBalanceSum returns the exact sum of
// CustomerBalance(0..n-1).
func ExpectedCustomerBalanceSum(n uint64) float64 {
	full := n / 5000
	rem := n % 5000
	const periodSum = 4999 * 5000 / 2.0
	sum := float64(full) * periodSum
	sum += float64(rem*(rem-1)) / 2
	return sum - 10*float64(n)
}

// Customer returns the deterministic record of customer i.
func Customer(i uint64) schema.Record {
	return schema.Record{
		schema.IntValue(int64(i)),
		schema.Int32Value(int32(i%10 + 1)),
		schema.Int32Value(int32(i%4 + 1)),
		schema.CharValue(shortName("f", i)),
		schema.CharValue("OE"),
		schema.CharValue(shortName("l", i)),
		schema.CharValue(shortName("s", i)),
		schema.CharValue(shortName("t", i%7)),
		schema.CharValue(shortName("c", i%31)),
		schema.CharValue(pick2(i)),
		schema.CharValue(shortName("z", i%97)),
		schema.CharValue(shortName("p", i%89)),
		schema.IntValue(int64(1_500_000_000 + i%1_000_000)),
		schema.CharValue(credit(i)),
		schema.FloatValue(50_000),
		schema.FloatValue(float64(i%50) / 100),
		schema.FloatValue(CustomerBalance(i)),
		schema.Int32Value(int32(i % 1000)),
		schema.Int32Value(int32(i % 50)),
		schema.Int32Value(int32(i % 20)),
		schema.CharValue(pick2(i + 1)),
	}
}

// shortName renders a compact deterministic identifier that fits the
// narrow CHAR fields.
func shortName(prefix string, i uint64) string {
	s := fmt.Sprintf("%s%d", prefix, i%1000)
	if len(s) > 4 {
		s = s[:4]
	}
	return s
}

// pick2 returns a 2-byte code.
func pick2(i uint64) string {
	codes := []string{"aa", "bb", "cc", "dd"}
	return codes[i%uint64(len(codes))]
}

// credit returns the TPC-C credit code.
func credit(i uint64) string {
	if i%10 == 0 {
		return "BC"
	}
	return "GC"
}

// Generate streams n deterministic records of gen to fn, stopping on the
// first error. It is the loading path shared by all engines.
func Generate(n uint64, gen func(uint64) schema.Record, fn func(uint64, schema.Record) error) error {
	for i := uint64(0); i < n; i++ {
		if err := fn(i, gen(i)); err != nil {
			return fmt.Errorf("workload: generating record %d: %w", i, err)
		}
	}
	return nil
}

// PositionList draws k distinct sorted row positions from [0, n) using
// the seeded generator — the paper's "sorted position lists" produced by
// the preceding join operator.
func PositionList(r *rand.Rand, k int, n uint64) []uint64 {
	if uint64(k) > n {
		k = int(n)
	}
	seen := make(map[uint64]bool, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		p := uint64(r.Int63n(int64(n)))
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sortUint64(out)
	return out
}

// sortUint64 sorts in place.
func sortUint64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
