package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/schema"
)

// TestCustomerGeometryMatchesPaper pins the paper's record geometry: "a
// customer record has a size of 96 bytes for 21 fields".
func TestCustomerGeometryMatchesPaper(t *testing.T) {
	s := CustomerSchema()
	if s.Arity() != 21 {
		t.Errorf("customer arity = %d, want 21", s.Arity())
	}
	if s.Width() != 96 {
		t.Errorf("customer width = %d, want 96", s.Width())
	}
}

// TestItemGeometryMatchesPaper pins "an item record has a size of 20
// bytes for 4 fields + 8 bytes for the price field".
func TestItemGeometryMatchesPaper(t *testing.T) {
	s := ItemSchema()
	if s.Arity() != 5 {
		t.Errorf("item arity = %d, want 5 (4 fields + price)", s.Arity())
	}
	if s.Width() != 28 {
		t.Errorf("item width = %d, want 28", s.Width())
	}
	if s.Attr(ItemPriceCol).Name != "i_price" || s.Attr(ItemPriceCol).Size != 8 {
		t.Errorf("price column misplaced: %v", s.Attr(ItemPriceCol))
	}
	nonPrice := s.Width() - s.Attr(ItemPriceCol).Size
	if nonPrice != 20 {
		t.Errorf("non-price bytes = %d, want 20", nonPrice)
	}
}

func TestRecordsMatchSchemas(t *testing.T) {
	cs, is := CustomerSchema(), ItemSchema()
	for i := uint64(0); i < 100; i++ {
		c := Customer(i)
		if len(c) != cs.Arity() {
			t.Fatalf("customer record arity %d", len(c))
		}
		buf := make([]byte, cs.Width())
		if err := schema.EncodeRecord(buf, cs, c); err != nil {
			t.Fatalf("customer %d does not encode: %v", i, err)
		}
		it := Item(i)
		if len(it) != is.Arity() {
			t.Fatalf("item record arity %d", len(it))
		}
		buf = make([]byte, is.Width())
		if err := schema.EncodeRecord(buf, is, it); err != nil {
			t.Fatalf("item %d does not encode: %v", i, err)
		}
	}
}

func TestExpectedItemPriceSumClosedForm(t *testing.T) {
	for _, n := range []uint64{0, 1, 57, 10_000, 12_345, 100_000} {
		var want float64
		for i := uint64(0); i < n; i++ {
			want += ItemPrice(i)
		}
		got := ExpectedItemPriceSum(n)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("ExpectedItemPriceSum(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestExpectedCustomerBalanceSumClosedForm(t *testing.T) {
	for _, n := range []uint64{0, 1, 4_999, 5_000, 12_345} {
		var want float64
		for i := uint64(0); i < n; i++ {
			want += CustomerBalance(i)
		}
		got := ExpectedCustomerBalanceSum(n)
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("ExpectedCustomerBalanceSum(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestGenerateStopsOnError(t *testing.T) {
	calls := 0
	err := Generate(10, Item, func(i uint64, r schema.Record) error {
		calls++
		if i == 3 {
			return schema.ErrArityMismatch
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Item(42)
	b := Item(42)
	if !a.Equal(b) {
		t.Error("Item not deterministic")
	}
	if !Customer(7).Equal(Customer(7)) {
		t.Error("Customer not deterministic")
	}
}

func TestPositionList(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pos := PositionList(r, 150, 1_000_000)
	if len(pos) != 150 {
		t.Fatalf("len = %d", len(pos))
	}
	seen := map[uint64]bool{}
	for i, p := range pos {
		if p >= 1_000_000 {
			t.Fatalf("position %d out of range", p)
		}
		if seen[p] {
			t.Fatal("duplicate position")
		}
		seen[p] = true
		if i > 0 && pos[i-1] > p {
			t.Fatal("positions not sorted")
		}
	}
	// k > n clamps.
	small := PositionList(r, 10, 4)
	if len(small) != 4 {
		t.Fatalf("clamped len = %d", len(small))
	}
}

func TestSortUint64(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]uint64, 500)
	for i := range xs {
		xs[i] = uint64(r.Int63n(10_000))
	}
	sortUint64(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestGenerateTraceComposition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	mix := HTAPMix(5, 0.7, []int{4}, []int{2})
	tr := GenerateTrace(r, mix, 10_000, 1000)
	var oltp, olap, updates int
	for _, op := range tr {
		switch op.Kind {
		case PointRead:
			oltp++
			if len(op.Cols) != 5 {
				t.Fatal("point read must touch all columns")
			}
		case PointUpdate:
			oltp++
			updates++
			if len(op.Cols) != 1 || op.Cols[0] != 2 {
				t.Fatalf("update cols = %v", op.Cols)
			}
		case ColumnScan:
			olap++
			if len(op.Cols) != 1 || op.Cols[0] != 4 {
				t.Fatalf("scan cols = %v", op.Cols)
			}
		}
		if op.Kind != ColumnScan && op.Row >= 1000 {
			t.Fatalf("row %d out of range", op.Row)
		}
	}
	frac := float64(oltp) / float64(len(tr))
	if math.Abs(frac-0.7) > 0.05 {
		t.Errorf("OLTP fraction = %v, want ~0.7", frac)
	}
	if updates == 0 || updates == oltp {
		t.Errorf("updates = %d of %d OLTP ops, want a mix", updates, oltp)
	}
}

func TestGenerateTraceZeroRows(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := GenerateTrace(r, OLTPMix(3, []int{0}), 10, 0)
	if len(tr) != 10 {
		t.Fatal("trace truncated")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		PointRead: "point-read", PointUpdate: "point-update",
		Insert: "insert", ColumnScan: "column-scan", OpKind(9): "OpKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
}

func TestMonitorCounts(t *testing.T) {
	m := NewMonitor(4)
	m.Observe(Op{Kind: PointRead, Cols: []int{0, 1, 2, 3}})
	m.Observe(Op{Kind: PointUpdate, Cols: []int{1}})
	m.Observe(Op{Kind: ColumnScan, Cols: []int{3}})
	m.Observe(Op{Kind: ColumnScan, Cols: []int{3}})
	m.Observe(Op{Kind: Insert})
	s := m.Snapshot()
	if s.Point[0] != 1 || s.Point[1] != 2 || s.Scan[3] != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Inserts != 1 || s.Updates != 1 {
		t.Fatalf("writes = %d/%d", s.Inserts, s.Updates)
	}
	want := 2.0 / 7.0 // 2 scans, 5 point touches
	if math.Abs(s.AttrCentricRatio-want) > 1e-9 {
		t.Fatalf("ratio = %v, want %v", s.AttrCentricRatio, want)
	}
	m.Reset()
	if m.Snapshot().AttrCentricRatio != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMonitorIgnoresOutOfRangeCols(t *testing.T) {
	m := NewMonitor(2)
	m.Observe(Op{Kind: PointRead, Cols: []int{-1, 5, 1}})
	m.Observe(Op{Kind: ColumnScan, Cols: []int{7}})
	s := m.Snapshot()
	if s.Point[1] != 1 || s.Point[0] != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSuggestGroupsFusesCoAccessedColumns(t *testing.T) {
	m := NewMonitor(5)
	// Columns 0-2 always read together (record-centric); 3 and 4 scanned.
	for i := 0; i < 100; i++ {
		m.Observe(Op{Kind: PointRead, Cols: []int{0, 1, 2}})
		m.Observe(Op{Kind: ColumnScan, Cols: []int{3}})
		m.Observe(Op{Kind: ColumnScan, Cols: []int{4}})
	}
	groups := m.SuggestGroups(0.5)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != 0 || groups[0][2] != 2 {
		t.Fatalf("fused group = %v", groups[0])
	}
	if len(groups[1]) != 1 || len(groups[2]) != 1 {
		t.Fatalf("scan columns not thin: %v", groups)
	}
}

func TestSuggestGroupsKeepsScanDominatedThin(t *testing.T) {
	m := NewMonitor(3)
	// Point reads touch all three columns, but column 2 is also scanned
	// heavily — it must stay thin despite co-access.
	for i := 0; i < 50; i++ {
		m.Observe(Op{Kind: PointRead, Cols: []int{0, 1, 2}})
	}
	for i := 0; i < 500; i++ {
		m.Observe(Op{Kind: ColumnScan, Cols: []int{2}})
	}
	groups := m.SuggestGroups(0.5)
	for _, g := range groups {
		for _, c := range g {
			if c == 2 && len(g) > 1 {
				t.Fatalf("scan-dominated column fused: %v", groups)
			}
		}
	}
}

func TestSuggestGroupsEmptyMonitor(t *testing.T) {
	m := NewMonitor(4)
	groups := m.SuggestGroups(0.5)
	if len(groups) != 4 {
		t.Fatalf("empty monitor should keep all columns thin: %v", groups)
	}
}

func TestSuggestGroupsBadAffinityDefaults(t *testing.T) {
	m := NewMonitor(2)
	for i := 0; i < 10; i++ {
		m.Observe(Op{Kind: PointRead, Cols: []int{0, 1}})
	}
	for _, aff := range []float64{-1, 0, 2} {
		groups := m.SuggestGroups(aff)
		if len(groups) != 1 {
			t.Fatalf("affinity %v: groups = %v", aff, groups)
		}
	}
}

// Property: SuggestGroups always returns a partition of [0, arity).
func TestQuickSuggestGroupsIsPartition(t *testing.T) {
	f := func(seed int64, arityRaw, opsRaw uint8) bool {
		arity := int(arityRaw)%10 + 1
		ops := int(opsRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		m := NewMonitor(arity)
		tr := GenerateTrace(r, HTAPMix(arity, r.Float64(), []int{arity - 1}, []int{0}), ops, 100)
		m.ObserveTrace(tr)
		groups := m.SuggestGroups(r.Float64())
		seen := make(map[int]int)
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			for _, c := range g {
				seen[c]++
			}
		}
		if len(seen) != arity {
			return false
		}
		for c, n := range seen {
			if n != 1 || c < 0 || c >= arity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
