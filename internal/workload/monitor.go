package workload

import (
	"sort"
	"sync"
)

// Monitor observes the access pattern of a relation at runtime: per-
// attribute point (record-centric) and scan (attribute-centric) counts
// plus a column co-access matrix. Responsive storage engines (HYRISE,
// H₂O, Peloton, and the reference engine in internal/core) feed their
// operations into a Monitor and periodically ask it for a fragmentation
// advice via SuggestGroups — the mechanism behind the paper's "layout
// adaptability: responsive" property.
//
// Monitor is safe for concurrent use.
type Monitor struct {
	mu      sync.Mutex
	arity   int
	point   []uint64   // per-column record-centric touches
	scan    []uint64   // per-column attribute-centric touches
	coAcc   [][]uint64 // co-access counts (upper triangle used)
	inserts uint64
	updates uint64
}

// NewMonitor creates a monitor for a relation of the given arity.
func NewMonitor(arity int) *Monitor {
	m := &Monitor{
		arity: arity,
		point: make([]uint64, arity),
		scan:  make([]uint64, arity),
		coAcc: make([][]uint64, arity),
	}
	for i := range m.coAcc {
		m.coAcc[i] = make([]uint64, arity)
	}
	return m
}

// Arity returns the monitored relation arity.
func (m *Monitor) Arity() int { return m.arity }

// Observe records one workload operation.
func (m *Monitor) Observe(op Op) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch op.Kind {
	case PointRead, PointUpdate:
		if op.Kind == PointUpdate {
			m.updates++
		}
		for _, c := range op.Cols {
			if c >= 0 && c < m.arity {
				m.point[c]++
			}
		}
		// Columns touched together in one record-centric operation
		// co-access pairwise.
		for i := 0; i < len(op.Cols); i++ {
			for j := i + 1; j < len(op.Cols); j++ {
				a, b := op.Cols[i], op.Cols[j]
				if a >= 0 && a < m.arity && b >= 0 && b < m.arity {
					if a > b {
						a, b = b, a
					}
					m.coAcc[a][b]++
				}
			}
		}
	case Insert:
		m.inserts++
	case ColumnScan:
		for _, c := range op.Cols {
			if c >= 0 && c < m.arity {
				m.scan[c]++
			}
		}
	}
}

// ObserveTrace records a whole trace.
func (m *Monitor) ObserveTrace(t Trace) {
	for _, op := range t {
		m.Observe(op)
	}
}

// Reset clears all counters (engines call this after re-organizing, so
// the next advice reflects the post-adaptation workload only).
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.point {
		m.point[i], m.scan[i] = 0, 0
		for j := range m.coAcc[i] {
			m.coAcc[i][j] = 0
		}
	}
	m.inserts, m.updates = 0, 0
}

// Stats is a point-in-time summary of the observed pattern.
type Stats struct {
	// Point and Scan are per-column record-centric and attribute-centric
	// touch counts.
	Point, Scan []uint64
	// Inserts and Updates are write counters.
	Inserts, Updates uint64
	// AttrCentricRatio is scans / (scans + points) over all columns,
	// in [0,1]; 0 for an empty monitor.
	AttrCentricRatio float64
}

// Observations returns the total operations observed since the last
// Reset. Adaptive engines treat an empty monitor as "no evidence" and
// keep their current layout rather than reverting to the default advice.
func (m *Monitor) Observations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for i := 0; i < m.arity; i++ {
		n += m.point[i] + m.scan[i]
	}
	return n + m.inserts + m.updates
}

// Snapshot returns the current statistics.
func (m *Monitor) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Point:   append([]uint64(nil), m.point...),
		Scan:    append([]uint64(nil), m.scan...),
		Inserts: m.inserts,
		Updates: m.updates,
	}
	var points, scans uint64
	for i := 0; i < m.arity; i++ {
		points += m.point[i]
		scans += m.scan[i]
	}
	if points+scans > 0 {
		s.AttrCentricRatio = float64(scans) / float64(points+scans)
	}
	return s
}

// SuggestGroups proposes a vertical fragmentation: attributes that
// co-access in record-centric operations more than affinity·max fuse
// into shared (NSM-leaning) groups, while scan-dominated attributes stay
// alone as thin (DSM) columns. The greedy agglomeration mirrors the
// attribute-affinity clustering used by HYRISE-style layout advisors.
// affinity must be in (0, 1]; groups come back sorted by first member.
func (m *Monitor) SuggestGroups(affinity float64) [][]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if affinity <= 0 || affinity > 1 {
		affinity = 0.5
	}
	// Find the strongest co-access count for normalization.
	var maxCo uint64
	for i := 0; i < m.arity; i++ {
		for j := i + 1; j < m.arity; j++ {
			if m.coAcc[i][j] > maxCo {
				maxCo = m.coAcc[i][j]
			}
		}
	}
	parent := make([]int, m.arity)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	if maxCo > 0 {
		threshold := affinity * float64(maxCo)
		for i := 0; i < m.arity; i++ {
			for j := i + 1; j < m.arity; j++ {
				co := float64(m.coAcc[i][j])
				if co < threshold {
					continue
				}
				// A column scanned much more often than it is point-read
				// stays thin even when record reads co-access it.
				if m.scanDominated(i) || m.scanDominated(j) {
					continue
				}
				union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for c := 0; c < m.arity; c++ {
		r := find(c)
		groups[r] = append(groups[r], c)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// scanDominated reports whether column c's scans outnumber its point
// touches by more than 2:1. Callers hold m.mu.
func (m *Monitor) scanDominated(c int) bool {
	return m.scan[c] > 2*m.point[c]
}
