package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies one workload operation by its access pattern.
type OpKind uint8

// Operation kinds.
const (
	// PointRead reads one full record by position (record-centric).
	PointRead OpKind = iota
	// PointUpdate updates one field of one record (record-centric write).
	PointUpdate
	// Insert appends one record.
	Insert
	// ColumnScan aggregates one attribute over all records
	// (attribute-centric).
	ColumnScan
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case PointRead:
		return "point-read"
	case PointUpdate:
		return "point-update"
	case Insert:
		return "insert"
	case ColumnScan:
		return "column-scan"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation of a workload trace.
type Op struct {
	// Kind is the access pattern.
	Kind OpKind
	// Row is the target position for point operations.
	Row uint64
	// Cols are the attributes touched: all attributes for PointRead, the
	// updated attribute for PointUpdate, the scanned attribute for
	// ColumnScan.
	Cols []int
}

// Trace is an ordered operation sequence.
type Trace []Op

// Mix describes the composition of a generated HTAP trace.
type Mix struct {
	// OLTPFraction is the share of record-centric operations (point
	// reads, updates and inserts); the rest are column scans.
	OLTPFraction float64
	// UpdateFraction is the share of OLTP operations that write.
	UpdateFraction float64
	// ScanCols are the attributes analytic scans draw from.
	ScanCols []int
	// UpdateCols are the attributes transactional updates touch.
	UpdateCols []int
	// Arity is the relation arity (point reads touch all attributes).
	Arity int
}

// OLTPMix returns a write-heavy record-centric mix over the given schema
// arity (the paper's "massive short-living write-intensive transactional
// queries").
func OLTPMix(arity int, updateCols []int) Mix {
	return Mix{OLTPFraction: 1, UpdateFraction: 0.5, UpdateCols: updateCols, Arity: arity}
}

// OLAPMix returns a pure attribute-centric scan mix (the paper's
// "long-running ad-hoc analytic queries").
func OLAPMix(arity int, scanCols []int) Mix {
	return Mix{OLTPFraction: 0, ScanCols: scanCols, Arity: arity}
}

// HTAPMix blends both at the given OLTP fraction.
func HTAPMix(arity int, oltpFraction float64, scanCols, updateCols []int) Mix {
	return Mix{
		OLTPFraction:   oltpFraction,
		UpdateFraction: 0.5,
		ScanCols:       scanCols,
		UpdateCols:     updateCols,
		Arity:          arity,
	}
}

// GenerateTrace draws n operations from the mix against a table of rows
// records, using the seeded generator for reproducibility.
func GenerateTrace(r *rand.Rand, mix Mix, n int, rows uint64) Trace {
	if rows == 0 {
		rows = 1
	}
	all := make([]int, mix.Arity)
	for i := range all {
		all[i] = i
	}
	t := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		if r.Float64() < mix.OLTPFraction {
			row := uint64(r.Int63n(int64(rows)))
			if len(mix.UpdateCols) > 0 && r.Float64() < mix.UpdateFraction {
				col := mix.UpdateCols[r.Intn(len(mix.UpdateCols))]
				t = append(t, Op{Kind: PointUpdate, Row: row, Cols: []int{col}})
			} else {
				t = append(t, Op{Kind: PointRead, Row: row, Cols: all})
			}
		} else {
			cols := all
			if len(mix.ScanCols) > 0 {
				cols = []int{mix.ScanCols[r.Intn(len(mix.ScanCols))]}
			}
			t = append(t, Op{Kind: ColumnScan, Cols: cols})
		}
	}
	return t
}
