package core

import (
	"errors"
	"math"
	"testing"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestInsertSurvivesHostExhaustion: when host memory runs out mid-load,
// the insert fails cleanly and everything already stored stays readable.
func TestInsertSurvivesHostExhaustion(t *testing.T) {
	env := engine.NewEnv()
	env.Host = mem.NewAllocator(mem.Host, 64<<10) // 64 KiB host
	e := New(env, Options{ChunkRows: 128, HotChunks: 1})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()

	var loaded uint64
	var failure error
	for i := uint64(0); i < 100_000; i++ {
		if _, err := ct.Insert(workload.Item(i)); err != nil {
			failure = err
			break
		}
		loaded++
	}
	if failure == nil {
		t.Fatal("64 KiB host accepted 100k inserts")
	}
	if !errors.Is(failure, mem.ErrOutOfMemory) {
		t.Fatalf("failure = %v, want ErrOutOfMemory", failure)
	}
	if loaded == 0 {
		t.Fatal("nothing loaded before exhaustion")
	}
	// Everything stored before the failure is intact.
	for _, row := range []uint64{0, loaded / 2, loaded - 1} {
		rec, err := ct.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) after OOM = %v, %v", row, rec, err)
		}
	}
	sum, err := ct.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(loaded)) > 1e-6 {
		t.Fatalf("sum over survivors = %v", sum)
	}
}

// TestPlaceColumnRollsBackOnDeviceExhaustion: all-or-nothing placement —
// when the device fits some but not all chunks of a column, everything
// already moved comes back to the host.
func TestPlaceColumnRollsBackOnDeviceExhaustion(t *testing.T) {
	env := engine.NewEnv()
	prof := perfmodel.DefaultDevice()
	// Fits roughly 1.5 chunk-columns of 128 rows × 8 bytes.
	prof.GlobalMemory = 1536
	env.GPU = device.New(prof, env.Clock)
	e := New(env, Options{ChunkRows: 128, HotChunks: 1})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()
	if err := workload.Generate(600, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if ct.ColdChunks() < 3 {
		t.Fatalf("cold chunks = %d, need several", ct.ColdChunks())
	}

	err = ct.PlaceColumn(workload.ItemPriceCol)
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if len(ct.DeviceColumns()) != 0 {
		t.Fatalf("failed placement left device columns: %v", ct.DeviceColumns())
	}
	// The rollback returned every fragment to the host...
	for _, f := range ct.Snapshot().Layouts[1].Fragments {
		if f.Space == mem.Device {
			t.Fatalf("fragment stranded on device: %+v", f)
		}
	}
	// ...freed the device memory entirely...
	if used := env.GPU.Allocator().Used(); used != 0 {
		t.Fatalf("device memory leaked: %d bytes", used)
	}
	// ...and the data still answers.
	sum, err := ct.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(600)) > 1e-6 {
		t.Fatalf("sum after rollback = %v, %v", sum, err)
	}
}

// TestAdaptToleratesDeviceExhaustion: the advisor treats device OOM as a
// fallback condition, not an error.
func TestAdaptToleratesDeviceExhaustion(t *testing.T) {
	env := engine.NewEnv()
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = 256
	env.GPU = device.New(prof, env.Clock)
	e := New(env, Options{ChunkRows: 16384, HotChunks: 1, DevicePlacement: true})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()
	if err := workload.Generate(50_000, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ct.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	if _, err := ct.Adapt(); err != nil {
		t.Fatalf("Adapt errored on device exhaustion: %v", err)
	}
	if len(ct.DeviceColumns()) != 0 {
		t.Fatal("column placed on an exhausted device")
	}
}

// TestFreezeSurvivesUnderMemoryPressure: freezing needs transient memory
// for the cold fragments; when that allocation fails the hot chunk stays
// usable.
func TestFreezeUnderMemoryPressure(t *testing.T) {
	env := engine.NewEnv()
	// Enough for a couple of chunks but not unlimited.
	env.Host = mem.NewAllocator(mem.Host, 24<<10)
	e := New(env, Options{ChunkRows: 128, HotChunks: 1})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()
	var loaded uint64
	for i := uint64(0); i < 10_000; i++ {
		if _, err := ct.Insert(workload.Item(i)); err != nil {
			break
		}
		loaded++
	}
	// Whatever made it in is consistent.
	for row := uint64(0); row < loaded; row += 97 {
		rec, err := ct.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) = %v, %v", row, rec, err)
		}
	}
}
