// Package core implements the paper's proposal: the reference storage
// engine design for HTAP workloads on cooperating CPUs and GPUs
// (Section IV-C). The paper concludes that no surveyed engine satisfies
// all six required capabilities at once; this package is the constructive
// answer — an engine that does, built from the same layout/fragment
// algebra the survey is classified with:
//
//  1. Constrained strong flexible layouts: relations combine vertical
//     column grouping with horizontal chunking.
//  2. Responsive layout adaptability: a workload monitor drives column
//     re-grouping, relinearization and device placement at runtime.
//  3. Mixed data location, distributed locality: individual cold-region
//     fragments move between host and device memory.
//  4. Fragment linearization covering NSM and DSM: the hot region is
//     NSM-linearized for transactional access, the cold region DSM/thin
//     for analytics, and both orders are available per fragment.
//  5. Built-in multi-layout handling: an OLTP layout (hot chunks) and an
//     OLAP layout (cold chunks) coexist under one relation.
//  6. Delegation-based fragment scheme: every chunk lives in exactly one
//     of the two layouts — freezing *moves* it from the hot to the cold
//     region; queries stitch both regions with no data redundancy.
//
// The paper's challenge (b.iii) — analytics must not interfere with
// mission-critical transactions — is addressed with the MVCC substrate
// of internal/tx: updates never touch base fragments; they create
// versions in a delta store, analytic queries pin a snapshot and patch
// visible versions over the base scan, and a merge pass folds settled
// versions back into the fragments.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hybridstore/internal/compress"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/index"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/tx"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

// Options tunes the reference engine.
type Options struct {
	// ChunkRows is the horizontal chunk capacity (default 1024).
	ChunkRows uint64
	// HotChunks is how many newest chunks stay in the OLTP (NSM) region
	// before freezing moves them to the OLAP region (default 2).
	HotChunks int
	// Affinity is the co-access threshold for cold-region column
	// grouping (default 0.5).
	Affinity float64
	// DevicePlacement enables moving scan-hot cold columns to the GPU.
	DevicePlacement bool
	// DeviceCache routes cold-region analytic scans through the device
	// fragment cache (engine.Env.Cache): host-resident cold fragments are
	// shipped once, kept device-resident, and reused by later scans until
	// a write bumps the fragment version — so a repeated scan over
	// unchanged data costs zero bus bytes. Independent of
	// DevicePlacement, which *moves* fragments instead of caching images.
	DeviceCache bool
	// ResultCacheBytes bounds the cross-request result cache: query
	// answers (predicate aggregates, fused group-bys, point reads) are
	// memoized under the fragment-version vector their snapshot saw, so
	// a repeat query over unchanged data costs a map probe plus
	// O(#fragments) version compares instead of a scan. Invalidation is
	// purely passive — any write bumps a fragment version (or replaces
	// the fragment), and the next lookup misses. 0 disables the cache.
	ResultCacheBytes int64
	// ResultCacheTTL additionally ages result-cache entries out. 0 means
	// entries live until a version bump or LRU eviction — correct on its
	// own; a TTL only bounds memory held by never-revisited keys.
	ResultCacheTTL time.Duration
	// Compress seals side-car compressed images of the cold region's
	// singleton 8-byte numeric columns at the freeze point (the same point
	// that seals zone maps), re-sealing whenever the cold bytes are
	// rewritten (delta merge, regrouping). Analytic scans then execute in
	// the compressed domain on the host, and — combined with DeviceCache —
	// ship the compressed image over the bus instead of the dense bytes.
	// The raw fragments stay authoritative for point reads and MVCC
	// patching. Off by default.
	Compress bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.ChunkRows == 0 {
		o.ChunkRows = 1024
	}
	if o.HotChunks <= 0 {
		o.HotChunks = 2
	}
	if o.Affinity <= 0 || o.Affinity > 1 {
		o.Affinity = 0.5
	}
	return o
}

// Engine is the reference HTAP CPU/GPU storage engine.
type Engine struct {
	env  *engine.Env
	opts Options
	// rescache is the engine-wide cross-request result cache
	// (Options.ResultCacheBytes); nil when disabled.
	rescache *rescache.Cache
}

// New creates the engine.
func New(env *engine.Env, opts Options) *Engine {
	e := &Engine{env: env, opts: opts.withDefaults()}
	if e.opts.ResultCacheBytes > 0 {
		e.rescache = rescache.New(e.opts.ResultCacheBytes, e.opts.ResultCacheTTL)
	}
	return e
}

// ResultCache exposes the engine's result cache (nil when disabled) —
// the facade surfaces its Stats.
func (e *Engine) ResultCache() *rescache.Cache { return e.rescache }

// Name returns the engine name.
func (e *Engine) Name() string { return "HybridStore" }

// Capabilities declares the reference design's properties — exactly the
// six-point checklist of Section IV-C.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		BuiltInMultiLayout:    true,
		Responsive:            true,
		VariableLinearization: true,
		Scheme:                taxonomy.SchemeDelegation,
		Processors:            taxonomy.CPUAndGPU,
		Workloads:             taxonomy.HTAP,
		Year:                  2017,
	}
}

// chunkState tags where a chunk lives.
type chunkState uint8

const (
	// hot chunks live in the OLTP layout as one NSM fragment.
	hot chunkState = iota
	// cold chunks live in the OLAP layout as per-group fragments.
	cold
)

// chunk is one horizontal slice of the relation.
type chunk struct {
	rows  layout.RowRange
	state chunkState
	// nsm is the hot region's fragment (hot chunks only).
	nsm *layout.Fragment
	// groups/frags are the cold region's column grouping and fragments
	// (cold chunks only); frags[i] stores groups[i].
	groups [][]int
	frags  []*layout.Fragment
	// comp holds per-attribute side-car compressed images of the cold
	// bytes (Options.Compress), indexed by column; nil entries mark
	// non-compressible attributes. Re-sealed wherever the cold bytes are
	// rewritten so the images always reflect the fragments.
	comp []*compress.Column
}

// filled returns the stored tuplets.
func (c *chunk) filled() int {
	if c.state == hot {
		return c.nsm.Len()
	}
	if len(c.frags) == 0 {
		return 0
	}
	return c.frags[0].Len()
}

// Table is a reference-engine relation. Concurrency contract: queries
// and point updates may run concurrently from any number of goroutines;
// structural operations (Insert, Adapt, Merge, PlaceColumn, EvictColumn,
// Free) take the exclusive lock internally and may also be called from
// any goroutine.
type Table struct {
	mu   sync.RWMutex
	env  *engine.Env
	eng  *Engine
	rel  *layout.Relation
	cfg  exec.Config
	s    *schema.Schema
	oltp *layout.Layout
	olap *layout.Layout

	chunks []*chunk
	mon    *workload.Monitor

	// MVCC: updates become versions here; base fragments stay immutable
	// under updates.
	txm    *tx.Manager
	deltas *tx.Store

	// deviceCols marks columns whose cold fragments live on the GPU.
	deviceCols map[int]bool

	// pk is the primary-key hash index over attribute 0 (nil when the
	// schema has no int64 key attribute).
	pk *index.Hash

	// walLog, when non-nil, receives a KindInsert record ahead of every
	// insert; commit logging rides the tx.CommitLogger hook instead.
	// Installed by EnableWAL after any recovery replay.
	walLog *wal.Log

	adapts  int
	freezes int
}

// Create makes an empty relation.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	oltp := layout.NewLayout("oltp-hot", s)
	olap := layout.NewLayout("olap-cold", s)
	rel.AddLayout(oltp)
	rel.AddLayout(olap)
	t := &Table{
		env:  e.env,
		eng:  e,
		rel:  rel,
		s:    s,
		oltp: oltp,
		olap: olap,
		cfg: exec.Config{
			Policy: e.env.ExecPolicy,
			Host:   e.env.HostProfile,
			Clock:  e.env.Clock,
		},
		mon:        workload.NewMonitor(s.Arity()),
		txm:        tx.NewManager(),
		deltas:     tx.NewStore(),
		deviceCols: make(map[int]bool),
	}
	t.initPK()
	return t, nil
}

// Schema returns the relation schema.
func (t *Table) Schema() *schema.Schema { return t.s }

// Rows returns the row count.
func (t *Table) Rows() uint64 { t.mu.RLock(); defer t.mu.RUnlock(); return t.rel.Rows() }

// Snapshot digests the live structure of both regions.
func (t *Table) Snapshot() layout.Snapshot { t.mu.RLock(); defer t.mu.RUnlock(); return t.rel.Digest() }

// Freezes returns how many chunks have moved hot→cold.
func (t *Table) Freezes() int { return t.freezes }

// Adapts returns how many adaptations have run.
func (t *Table) Adapts() int { return t.adapts }

// DeviceColumns returns the columns whose cold fragments are
// device-resident, sorted ascending.
func (t *Table) DeviceColumns() []int {
	var out []int
	for c := 0; c < t.s.Arity(); c++ {
		if t.deviceCols[c] {
			out = append(out, c)
		}
	}
	return out
}

// HotChunks and ColdChunks count the regions.
func (t *Table) HotChunks() int { return t.countState(hot) }

// ColdChunks counts the cold region.
func (t *Table) ColdChunks() int { return t.countState(cold) }

func (t *Table) countState(s chunkState) int {
	n := 0
	for _, c := range t.chunks {
		if c.state == s {
			n++
		}
	}
	return n
}

// PendingVersions returns the number of unmerged delta versions.
func (t *Table) PendingVersions() int { return t.deltas.Versions() }

// Free releases all storage.
func (t *Table) Free() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.env.InvalidateTable(t.rel.Name())
	t.rel.Free()
	t.chunks = nil
}

// invalidateFrag retires any device-cached images of f. Called wherever a
// fragment's backing store is freed or replaced wholesale; in-place
// writes are covered by fragment version bumps instead.
func (t *Table) invalidateFrag(f *layout.Fragment) {
	if f != nil {
		t.env.InvalidateFrag(t.rel.Name(), f.ID())
	}
}

// ErrFrozen is returned by operations that require a hot chunk.
var ErrFrozen = errors.New("core: chunk is frozen")

// Insert appends a record to the hot region, opening a new chunk (and
// freezing the oldest hot chunk) as needed. On a WAL-enabled table the
// record is appended to the log before the hot region mutates, and the
// insert is acknowledged only once the log record is durable — the
// durability wait runs outside the table lock so concurrent inserts
// share one group-commit flush.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	row, lsn, err := t.insertLocked(rec)
	if err != nil {
		return 0, err
	}
	if lsn != 0 {
		if err := t.walLog.Sync(lsn); err != nil {
			return 0, fmt.Errorf("core: insert at row %d not durable: %w", row, err)
		}
	}
	return row, nil
}

// insertLocked validates, logs and applies one insert under the
// exclusive lock, returning the row and the log sequence number to wait
// on (0 when the table has no WAL).
func (t *Table) insertLocked(rec schema.Record) (uint64, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rec) != t.s.Arity() {
		return 0, 0, fmt.Errorf("%w: arity %d vs schema %d", schema.ErrArityMismatch, len(rec), t.s.Arity())
	}
	row := t.rel.Rows()
	if t.pk != nil {
		if _, err := t.pk.Get(rec[0].I); err == nil {
			return 0, 0, fmt.Errorf("core: inserting pk %d: %w", rec[0].I, index.ErrDuplicate)
		}
	}
	tail := t.tailChunk()
	if tail == nil || tail.filled() == int(tail.rows.Len()) {
		var err error
		tail, err = t.openChunk(row)
		if err != nil {
			return 0, 0, err
		}
	}
	// Log after every fallible step — validation, pk precheck, chunk
	// allocation — and before mutation: the log must never hold an
	// insert the caller saw fail (recovery would replay it), while an
	// applied-but-unlogged insert would shift every later logged row
	// position — unrecoverable either way.
	var lsn uint64
	if t.walLog != nil {
		if err := schema.ValidateRecord(t.s, rec); err != nil {
			return 0, 0, err
		}
		var err error
		lsn, err = t.walLog.Append(&wal.Record{Kind: wal.KindInsert, Table: t.rel.Name(), Row: row, Rec: rec})
		if err != nil {
			return 0, 0, fmt.Errorf("core: logging insert: %w", err)
		}
	}
	vals := make([]schema.Value, len(rec))
	copy(vals, rec)
	if err := tail.nsm.AppendTuplet(vals); err != nil {
		return 0, 0, err
	}
	t.rel.SetRows(row + 1)
	if err := t.indexInsert(rec, row); err != nil {
		return 0, 0, err
	}
	t.mon.Observe(workload.Op{Kind: workload.Insert})
	return row, lsn, nil
}

// tailChunk returns the newest chunk, or nil.
func (t *Table) tailChunk() *chunk {
	if len(t.chunks) == 0 {
		return nil
	}
	return t.chunks[len(t.chunks)-1]
}

// openChunk starts a new hot chunk at row begin and freezes overflowing
// hot chunks.
func (t *Table) openChunk(begin uint64) (*chunk, error) {
	f, err := layout.NewFragment(t.env.Host, t.s, layout.AllCols(t.s),
		layout.RowRange{Begin: begin, End: begin + t.eng.opts.ChunkRows}, layout.NSM)
	if err != nil {
		return nil, fmt.Errorf("core: opening chunk: %w", err)
	}
	if err := t.oltp.Add(f); err != nil {
		f.Free()
		return nil, err
	}
	c := &chunk{rows: f.Rows(), state: hot, nsm: f}
	t.chunks = append(t.chunks, c)

	// Enforce the hot-region budget: freeze oldest hot chunks beyond it.
	for t.HotChunks() > t.eng.opts.HotChunks {
		oldest := t.oldestHot()
		if oldest == nil || oldest == c {
			break
		}
		if err := t.freeze(oldest); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// oldestHot returns the oldest hot chunk.
func (t *Table) oldestHot() *chunk {
	for _, c := range t.chunks {
		if c.state == hot {
			return c
		}
	}
	return nil
}

// freeze MOVES a hot chunk into the cold region: its tuplets are
// rewritten into per-group fragments under the current grouping advice,
// the NSM fragment is dropped from the OLTP layout and freed, and the new
// fragments join the OLAP layout. This is the delegation-based scheme:
// after freezing, the chunk's data exists only in the cold region.
func (t *Table) freeze(c *chunk) error {
	if c.state != hot {
		return nil
	}
	sp := sfFreeze.Start()
	groups := t.mon.SuggestGroups(t.eng.opts.Affinity)
	frags, err := t.buildColdFragments(c.rows, groups)
	if err != nil {
		return err
	}
	// Migrate tuplets.
	n := c.filled()
	for i := 0; i < n; i++ {
		rec, err := c.nsm.Tuplet(i)
		if err != nil {
			freeAll(frags)
			return err
		}
		for gi, f := range frags {
			vals := make([]schema.Value, 0, len(groups[gi]))
			for _, col := range groups[gi] {
				vals = append(vals, rec[col])
			}
			if err := f.AppendTuplet(vals); err != nil {
				freeAll(frags)
				return err
			}
		}
	}
	// The chunk is immutable under transactions from here on (updates go
	// through the MVCC delta store): seal exact per-column bounds so
	// predicate scans can prune it.
	for _, f := range frags {
		f.SealStats()
	}
	for _, f := range frags {
		if err := t.olap.Add(f); err != nil {
			freeAll(frags)
			return err
		}
	}
	t.oltp.Remove(c.nsm)
	t.invalidateFrag(c.nsm)
	c.nsm.Free()
	c.nsm = nil
	c.state = cold
	c.groups = groups
	c.frags = frags
	t.sealChunkCompression(c)
	t.freezes++
	mFreezes.Inc()
	// Device-resident columns extend to the new cold fragments.
	for col := range t.deviceCols {
		if t.deviceCols[col] {
			if err := t.placeChunkColumn(c, col); err != nil {
				// Device exhaustion falls back to host residency.
				t.deviceCols[col] = false
			}
		}
	}
	sp.EndWith(fmt.Sprintf("rows=[%d,%d) groups=%v", c.rows.Begin, c.rows.End, groups))
	return nil
}

// buildColdFragments allocates the cold representation of a chunk:
// thin Direct fragments for singleton groups, DSM fragments for fused
// groups.
func (t *Table) buildColdFragments(rows layout.RowRange, groups [][]int) ([]*layout.Fragment, error) {
	var frags []*layout.Fragment
	for _, g := range groups {
		lin := layout.Direct
		if len(g) > 1 {
			lin = layout.DSM
		}
		f, err := layout.NewFragment(t.env.Host, t.s, g, rows, lin)
		if err != nil {
			freeAll(frags)
			return nil, fmt.Errorf("core: building cold fragments: %w", err)
		}
		frags = append(frags, f)
	}
	return frags, nil
}

// sealChunkCompression (re)builds the chunk's side-car compressed images
// from its current cold bytes — singleton Direct groups over 8-byte
// numeric attributes only, the exact shape the compressed-domain
// operators consume. Called at every point the cold bytes settle: the
// freeze, a regroup, a delta merge. A no-op unless Options.Compress.
func (t *Table) sealChunkCompression(c *chunk) {
	if !t.eng.opts.Compress || c.state != cold {
		return
	}
	c.comp = make([]*compress.Column, t.s.Arity())
	for gi, f := range c.frags {
		if len(c.groups[gi]) != 1 {
			continue
		}
		col := c.groups[gi][0]
		a := t.s.Attr(col)
		if a.Size != 8 || (a.Kind != schema.Int64 && a.Kind != schema.Float64) {
			continue
		}
		cv, err := f.ColVector(col)
		if err != nil || !cv.Contiguous() {
			continue
		}
		cc, err := compress.Compress(cv.Data[cv.Base:cv.Base+cv.Len*8], cv.Len, 8)
		if err != nil {
			continue
		}
		c.comp[col] = cc
	}
}

// freeAll frees a fragment list.
func freeAll(frags []*layout.Fragment) {
	for _, f := range frags {
		f.Free()
	}
}

// chunkFor locates the chunk covering row.
func (t *Table) chunkFor(row uint64) (*chunk, error) {
	idx := int(row / t.eng.opts.ChunkRows)
	if idx < len(t.chunks) && t.chunks[idx].rows.Contains(row) {
		return t.chunks[idx], nil
	}
	for _, c := range t.chunks {
		if c.rows.Contains(row) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: row %d", engine.ErrNoSuchRow, row)
}

// baseRecord materializes row from the base fragments (no MVCC patching).
func (t *Table) baseRecord(row uint64) (schema.Record, error) {
	c, err := t.chunkFor(row)
	if err != nil {
		return nil, err
	}
	rec, err := t.recordFromChunk(c, row)
	if err != nil {
		return nil, err
	}
	// Device-resident fragments were read directly above; charge the bus
	// for the gathered field bytes.
	t.chargeDeviceGather(c, 1)
	return rec, nil
}

// recordFromChunk materializes row from chunk c's base fragments without
// charging the device gather cost: GetMulti batches the charge per chunk
// (one bus latency for the whole cohort), solo reads charge per call.
func (t *Table) recordFromChunk(c *chunk, row uint64) (schema.Record, error) {
	i := int(row - c.rows.Begin)
	if c.state == hot {
		vals, err := c.nsm.Tuplet(i)
		if err != nil {
			return nil, err
		}
		return schema.Record(vals), nil
	}
	rec := make(schema.Record, t.s.Arity())
	for gi, f := range c.frags {
		for _, col := range c.groups[gi] {
			v, err := f.Get(i, col)
			if err != nil {
				return nil, err
			}
			rec[col] = v
		}
	}
	return rec, nil
}

// chargeDeviceGather prices gathering k records' worth of device-resident
// fields of chunk c.
func (t *Table) chargeDeviceGather(c *chunk, k int64) {
	if c.state != cold {
		return
	}
	var devBytes int64
	for gi, f := range c.frags {
		if f.Space() == t.env.GPU.Allocator().Space() {
			for _, col := range c.groups[gi] {
				devBytes += int64(t.s.Attr(col).Size)
			}
		}
	}
	if devBytes > 0 {
		t.env.GPU.ChargeTransfer(devBytes*k, false)
	}
}
