package core

import (
	"math"
	"testing"

	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestPruneStatsSealCoreFreeze verifies that freezing a chunk seals
// exact per-column zone maps on the cold fragments: the hot NSM region
// carries running (unsealed) bounds, the cold fragments sealed ones.
func TestPruneStatsSealCoreFreeze(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 2}, 500)
	defer tbl.Free()
	var coldSealed, hotChunks int
	for _, c := range tbl.chunks {
		if c.state == hot {
			hotChunks++
			z := c.nsm.Stats(workload.ItemPriceCol)
			if z == nil || !z.Valid() {
				t.Fatal("hot chunk has no running price zone")
			}
			if z.Sealed() {
				t.Error("hot chunk zone must not be sealed")
			}
			continue
		}
		frag, err := tbl.fragmentForCol(c, workload.ItemPriceCol)
		if err != nil {
			t.Fatal(err)
		}
		z := frag.Stats(workload.ItemPriceCol)
		if z == nil || !z.Sealed() {
			t.Fatalf("cold chunk [%d,%d) price zone not sealed", c.rows.Begin, c.rows.End)
		}
		min, max, ok := z.Float64Bounds()
		if !ok {
			t.Fatal("sealed zone has no bounds")
		}
		wantMin := workload.ItemPrice(c.rows.Begin)
		wantMax := workload.ItemPrice(c.rows.Begin + uint64(c.filled()) - 1)
		if min != wantMin || max != wantMax {
			t.Errorf("cold zone bounds [%v,%v], want [%v,%v]", min, max, wantMin, wantMax)
		}
		coldSealed++
	}
	if coldSealed == 0 || hotChunks == 0 {
		t.Fatalf("expected both regions populated: cold=%d hot=%d", coldSealed, hotChunks)
	}
}

// TestPruneStatsSurviveRegroup verifies that Adapt's regrouping re-seals
// the rebuilt cold fragments.
func TestPruneStatsSurviveRegroup(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1, Affinity: 0.5}, 400)
	defer tbl.Free()
	for i := 0; i < 40; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	changed, err := tbl.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Skip("advisor kept the grouping; nothing regrouped")
	}
	for _, c := range tbl.chunks {
		if c.state != cold {
			continue
		}
		frag, err := tbl.fragmentForCol(c, workload.ItemPriceCol)
		if err != nil {
			t.Fatal(err)
		}
		if z := frag.Stats(workload.ItemPriceCol); z == nil || !z.Sealed() {
			t.Fatalf("regrouped chunk [%d,%d) lost its sealed price zone", c.rows.Begin, c.rows.End)
		}
	}
}

// TestPruneDeviceSkipsKernelLaunch places the price column on the
// device and issues a predicate no fragment can match: zero reduction
// kernels may launch, and the pruned counter must advance. A predicate
// that matches a single chunk then launches kernels only for it.
func TestPruneDeviceSkipsKernelLaunch(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1, DevicePlacement: true}, 512)
	defer tbl.Free()
	if err := tbl.PlaceColumn(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}

	before := obs.TakeSnapshot()
	sum, n, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Between[float64](1000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0 || n != 0 {
		t.Fatalf("impossible predicate returned sum=%v n=%d", sum, n)
	}
	mid := obs.TakeSnapshot()
	if got := mid.Counter("device.kernels") - before.Counter("device.kernels"); got != 0 {
		t.Errorf("impossible predicate launched %d kernels", got)
	}
	if mid.Counter("exec.zonemap.pruned") <= before.Counter("exec.zonemap.pruned") {
		t.Error("exec.zonemap.pruned did not advance")
	}

	// Prices are monotone: Between(1.0, 1.27) hits only chunk 0's rows
	// (prices 1.00..2.27 across its 128 rows — exactly rows 0..27 match).
	sum, n, err = tbl.SumFloat64Where(workload.ItemPriceCol, exec.Between[float64](1.0, 1.27))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	var wantN int64
	for i := uint64(0); i < 512; i++ {
		if p := workload.ItemPrice(i); p >= 1.0 && p <= 1.27 {
			want += p
			wantN++
		}
	}
	if n != wantN || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("selective device sum = (%v, %d), want (%v, %d)", sum, n, want, wantN)
	}
	after := obs.TakeSnapshot()
	// Only the surviving chunk's fused kernel pair may have launched.
	if got := after.Counter("device.kernels") - mid.Counter("device.kernels"); got != 2 {
		t.Errorf("selective predicate launched %d kernels, want 2", got)
	}
}

// TestPruneMVCCPatchExactUnderPruning updates rows far outside the
// sealed bounds and checks the snapshot patch stays exact when base
// fragments are pruned.
func TestPruneMVCCPatchExactUnderPruning(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 512)
	defer tbl.Free()
	if err := tbl.Update(10, workload.ItemPriceCol, schema.FloatValue(5000)); err != nil {
		t.Fatal(err)
	}
	// The base fragments top out below 7; only the delta version matches.
	sum, n, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Gt[float64](1000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || sum != 5000 {
		t.Fatalf("patched result = (%v, %d), want (5000, 1)", sum, n)
	}
	// The inverse range excludes the updated row and includes its old
	// base value's fragment — the patch must subtract it.
	sum, n, err = tbl.SumFloat64Where(workload.ItemPriceCol, exec.Lt[float64](1000))
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(512) - workload.ItemPrice(10)
	if n != 511 || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("complement result = (%v, %d), want (%v, 511)", sum, n, want)
	}
}
