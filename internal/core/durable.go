// Durability for the reference engine: write-ahead logging of inserts
// and MVCC commits, MVCC-consistent checkpoint serialization, and the
// recovery twins (restore + replay) of both.
//
// The protocol:
//
//   - Every Insert appends a KindInsert record before the row mutates
//     the hot region; the ack waits on group-commit durability.
//   - Every MVCC commit appends a KindCommit record inside the commit
//     critical section (tx.CommitLogger), so log order equals
//     commit-timestamp order and replay preserves first-committer-wins.
//   - A checkpoint pins a snapshot timestamp (tx.Manager.PinSnapshot —
//     which also fences Merge/Prune from dropping versions the
//     checkpoint can still see), serializes base fragments byte-for-byte
//     with their sealed zone maps and compressed side-cars, the delta
//     versions visible at the pinned timestamp, and the device-resident
//     column manifest. Restore rebuilds all of it without re-sealing a
//     single zone map and re-primes the device fragment cache.
package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/compress"
	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/stats"
	"hybridstore/internal/tx"
	"hybridstore/internal/wal"
)

// ErrReplayDiverged is returned when replaying the log against restored
// state disagrees with what the log says happened — corruption, never
// something recovery may paper over.
var ErrReplayDiverged = errors.New("core: wal replay diverged from recovered state")

// EnableWAL attaches the shared log to this table: from now on every
// Insert appends (and waits durable) before acknowledging, and every
// transaction commit appends its write set at its commit timestamp
// inside the commit critical section. Call after recovery replay so
// replayed operations are not re-logged.
func (t *Table) EnableWAL(l *wal.Log) {
	t.mu.Lock()
	t.walLog = l
	t.mu.Unlock()
	name := t.rel.Name()
	t.txm.SetCommitLogger(func(ts uint64, writes []tx.LoggedWrite) (func() error, error) {
		ops := make([]wal.Op, len(writes))
		for i, w := range writes {
			ops[i] = wal.Op{Row: w.Row, Deleted: w.Deleted, Rec: w.Rec}
		}
		lsn, err := l.Append(&wal.Record{Kind: wal.KindCommit, Table: name, TS: ts, Ops: ops})
		if err != nil {
			return nil, err
		}
		return func() error { return l.Sync(lsn) }, nil
	})
}

// ReplayInsert re-applies one logged insert during recovery. The row
// position is the log's claim; landing anywhere else means the restored
// base state and the log disagree.
func (t *Table) ReplayInsert(row uint64, rec schema.Record) error {
	got, err := t.Insert(rec)
	if err != nil {
		return fmt.Errorf("core: replaying insert at row %d: %w", row, err)
	}
	if got != row {
		return fmt.Errorf("%w: insert landed at row %d, log says %d", ErrReplayDiverged, got, row)
	}
	return nil
}

// ReplayCommit re-installs one logged transaction commit at its
// original timestamp. InstallAt rejects out-of-order installs, so a
// write-write conflict that validation rejected before the crash can
// never slip in during replay.
func (t *Table) ReplayCommit(ts uint64, ops []wal.Op) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, op := range ops {
		if err := t.deltas.InstallAt(op.Row, op.Rec, op.Deleted, ts); err != nil {
			return fmt.Errorf("%w: %v", ErrReplayDiverged, err)
		}
	}
	t.txm.AdvanceTo(ts)
	return nil
}

// CheckpointTo serializes the table into enc at a pinned MVCC snapshot,
// returning the pinned timestamp and the serialized row count — the
// coordinates log truncation keys on (commits at ts <= ckptTS and
// inserts at row < ckptRows are covered by the image). The pin holds
// MinActiveTS back for its duration, so a concurrent Merge/Prune cannot
// fold or drop versions the serialization still needs.
func (t *Table) CheckpointTo(enc *wal.Encoder) (ckptTS, ckptRows uint64, err error) {
	pinTS, release := t.txm.PinSnapshot()
	defer release()
	t.mu.RLock()
	defer t.mu.RUnlock()

	rows := t.rel.Rows()
	enc.U64(pinTS)
	enc.U64(rows)

	enc.U32(uint32(len(t.chunks)))
	for _, c := range t.chunks {
		enc.U8(uint8(c.state))
		enc.U64(c.rows.Begin)
		enc.U64(c.rows.End)
		if c.state == hot {
			encodeFragment(enc, c.nsm)
			continue
		}
		enc.U32(uint32(len(c.groups)))
		for _, g := range c.groups {
			enc.U32(uint32(len(g)))
			for _, col := range g {
				enc.U32(uint32(col))
			}
		}
		for _, f := range c.frags {
			encodeFragment(enc, f)
		}
		var comps []int
		for col, cc := range c.comp {
			if cc != nil {
				comps = append(comps, col)
			}
		}
		enc.U32(uint32(len(comps)))
		for _, col := range comps {
			enc.U32(uint32(col))
			enc.Blob(c.comp[col].Marshal())
		}
	}

	// Delta versions visible at the pinned snapshot, stamped with their
	// real commit timestamps so restore rebuilds the same chains.
	type deltaEntry struct {
		row     uint64
		rec     schema.Record
		deleted bool
		ts      uint64
	}
	var deltas []deltaEntry
	t.deltas.RangeVisible(pinTS, func(row uint64, rec schema.Record, deleted bool, verTS uint64) bool {
		deltas = append(deltas, deltaEntry{row: row, rec: rec, deleted: deleted, ts: verTS})
		return true
	})
	enc.U32(uint32(len(deltas)))
	for _, d := range deltas {
		enc.U64(d.row)
		enc.U64(d.ts)
		enc.Bool(d.deleted)
		if !d.deleted {
			enc.Record(d.rec)
		}
	}

	// Device-cache manifest: which columns were warm, in which format.
	var resident []device.ResidentCol
	if t.eng.opts.DeviceCache && t.env.Cache != nil {
		resident = t.env.Cache.ResidentColumns(t.rel.Name())
	}
	enc.U32(uint32(len(resident)))
	for _, rc := range resident {
		enc.U32(uint32(rc.Col))
		enc.Bool(rc.Comp)
	}
	return pinTS, rows, nil
}

// encodeFragment serializes one base fragment: linearization, length,
// the full block bytes, and every zone snapshot (sealed flags included).
func encodeFragment(enc *wal.Encoder, f *layout.Fragment) {
	enc.U8(uint8(f.Lin()))
	enc.U32(uint32(f.Len()))
	enc.Blob(f.Raw())
	cols := f.Cols()
	var zoned []int
	for _, c := range cols {
		if f.Stats(c) != nil {
			zoned = append(zoned, c)
		}
	}
	enc.U32(uint32(len(zoned)))
	for _, c := range zoned {
		enc.U32(uint32(c))
		encodeZone(enc, f.Stats(c).Snapshot())
	}
}

// encodeZone/decodeZone serialize a stats.Snapshot.
func encodeZone(enc *wal.Encoder, s stats.Snapshot) {
	enc.U8(uint8(s.Kind))
	enc.U64(uint64(s.Count))
	enc.U64(uint64(s.MinI))
	enc.U64(uint64(s.MaxI))
	enc.F64(s.MinF)
	enc.F64(s.MaxF)
	enc.Bool(s.Sealed)
	enc.Bool(s.Invalid)
}

func decodeZone(d *wal.Decoder) stats.Snapshot {
	return stats.Snapshot{
		Kind:    stats.Kind(d.U8()),
		Count:   int64(d.U64()),
		MinI:    int64(d.U64()),
		MaxI:    int64(d.U64()),
		MinF:    d.F64(),
		MaxF:    d.F64(),
		Sealed:  d.Bool(),
		Invalid: d.Bool(),
	}
}

// restoreFragment rebuilds one serialized fragment with the given
// column set, installing content and zone snapshots without a re-seal.
func (t *Table) restoreFragment(d *wal.Decoder, cols []int, rows layout.RowRange) (*layout.Fragment, error) {
	lin := layout.Linearization(d.U8())
	n := int(d.U32())
	raw := d.Blob()
	f, err := layout.NewFragment(t.env.Host, t.s, cols, rows, lin)
	if err != nil {
		return nil, fmt.Errorf("core: restoring fragment: %w", err)
	}
	if err := f.RestoreContent(raw, n); err != nil {
		f.Free()
		return nil, fmt.Errorf("core: restoring fragment: %w", err)
	}
	nz := int(d.U32())
	for i := 0; i < nz; i++ {
		col := int(d.U32())
		zs := decodeZone(d)
		if err := f.RestoreZone(col, zs); err != nil {
			f.Free()
			return nil, fmt.Errorf("core: restoring zone of col %d: %w", col, err)
		}
	}
	if err := d.Err(); err != nil {
		f.Free()
		return nil, err
	}
	return f, nil
}

// RestoreTable rebuilds a table from a checkpoint section written by
// CheckpointTo: base fragments byte-identical with sealed zone maps
// (zero re-seals), compressed side-cars decoded from their marshaled
// images, delta chains at their original commit timestamps, the clock
// advanced to the checkpoint timestamp, the PK index rebuilt, and the
// device fragment cache re-primed from the manifest.
func (e *Engine) RestoreTable(name string, s *schema.Schema, d *wal.Decoder) (*Table, error) {
	et, err := e.Create(name, s)
	if err != nil {
		return nil, err
	}
	t := et.(*Table)

	ckptTS := d.U64()
	rows := d.U64()
	nchunks := int(d.U32())
	for ci := 0; ci < nchunks; ci++ {
		state := chunkState(d.U8())
		rr := layout.RowRange{Begin: d.U64(), End: d.U64()}
		c := &chunk{rows: rr, state: state}
		if state == hot {
			f, err := t.restoreFragment(d, layout.AllCols(t.s), rr)
			if err != nil {
				return nil, err
			}
			if err := t.oltp.Add(f); err != nil {
				f.Free()
				return nil, err
			}
			c.nsm = f
		} else {
			ng := int(d.U32())
			groups := make([][]int, 0, ng)
			for gi := 0; gi < ng; gi++ {
				gl := int(d.U32())
				g := make([]int, 0, gl)
				for k := 0; k < gl; k++ {
					g = append(g, int(d.U32()))
				}
				groups = append(groups, g)
			}
			if err := d.Err(); err != nil {
				return nil, err
			}
			c.groups = groups
			for _, g := range groups {
				f, err := t.restoreFragment(d, g, rr)
				if err != nil {
					freeAll(c.frags)
					return nil, err
				}
				c.frags = append(c.frags, f)
			}
			for _, f := range c.frags {
				if err := t.olap.Add(f); err != nil {
					return nil, err
				}
			}
			nc := int(d.U32())
			if nc > 0 {
				c.comp = make([]*compress.Column, t.s.Arity())
				for k := 0; k < nc; k++ {
					col := int(d.U32())
					img := d.Blob()
					if d.Err() != nil {
						return nil, d.Err()
					}
					cc, err := compress.Decode(img)
					if err != nil {
						return nil, fmt.Errorf("core: restoring compressed side-car of col %d: %w", col, err)
					}
					if col < len(c.comp) {
						c.comp[col] = cc
					}
				}
			}
		}
		t.chunks = append(t.chunks, c)
	}
	t.rel.SetRows(rows)

	// Rebuild the PK index from the restored base region. Keys are
	// immutable under MVCC, so the base value is always the indexed one.
	if t.pk != nil {
		for row := uint64(0); row < rows; row++ {
			v, err := t.baseValue(row, 0)
			if err != nil {
				return nil, fmt.Errorf("core: rebuilding pk at row %d: %w", row, err)
			}
			if err := t.pk.Put(v.I, row); err != nil {
				return nil, fmt.Errorf("core: rebuilding pk at row %d: %w", row, err)
			}
		}
	}

	nd := int(d.U32())
	for i := 0; i < nd; i++ {
		row := d.U64()
		verTS := d.U64()
		deleted := d.Bool()
		var rec schema.Record
		if !deleted {
			rec = d.Record()
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		if err := t.deltas.InstallAt(row, rec, deleted, verTS); err != nil {
			return nil, fmt.Errorf("core: restoring delta of row %d: %w", row, err)
		}
	}
	t.txm.AdvanceTo(ckptTS)

	nr := int(d.U32())
	resident := make([]device.ResidentCol, 0, nr)
	for i := 0; i < nr; i++ {
		rc := device.ResidentCol{Col: int(d.U32())}
		rc.Comp = d.Bool()
		resident = append(resident, rc)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(resident) > 0 {
		if err := t.PrimeDeviceCache(resident); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PrimeDeviceCache uploads the listed columns' cold fragments into the
// device fragment cache — the warm-restart path that restores the
// pre-crash working set before the first scans arrive. Columns ride the
// same piece geometry scans use, so scan-time cache keys match. A
// fleet-scheduled environment skips priming (placement is re-derived by
// the scheduler); so does a table without the cache enabled.
func (t *Table) PrimeDeviceCache(cols []device.ResidentCol) error {
	if !t.eng.opts.DeviceCache || t.env.Cache == nil {
		return nil
	}
	ds, ok := t.env.DeviceExec(t.rel.Name()).(exec.DeviceScan)
	if !ok {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := t.rel.Rows()
	for _, rc := range cols {
		if rc.Col < 0 || rc.Col >= t.s.Arity() {
			continue
		}
		var pieces []exec.Piece
		for _, c := range t.chunks {
			if c.state != cold || c.rows.Begin >= rows {
				continue
			}
			frag, err := t.fragmentForCol(c, rc.Col)
			if err != nil {
				return err
			}
			if frag.Space() != t.env.Host.Space() {
				continue // device-placed fragments have no host bytes to ship
			}
			v, err := frag.ColVector(rc.Col)
			if err != nil {
				return err
			}
			piece := exec.Piece{
				Rows:   layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
				Vec:    v,
				FragID: frag.ID(), FragVersion: frag.Version(),
			}
			if rc.Comp {
				t.attachCompressed(&piece, c, rc.Col)
				if piece.Comp == nil {
					continue
				}
			}
			pieces = append(pieces, piece)
		}
		if err := ds.Prime(rc.Col, pieces, rc.Comp); err != nil {
			return err
		}
	}
	return nil
}
