package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/stats"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// SumFloat64WhereMulti answers K predicate aggregations over one column
// from a single pass: one lock acquisition, one MVCC snapshot, one walk
// of the chunk list, and one shared host scan for all compatible
// predicates — the core half of the serving layer's shared-scan
// batching. Result k is exactly what SumFloat64Where(col, preds[k])
// would return against the same snapshot:
//
//   - device-resident fragments run the reduction kernel per admitting
//     predicate in chunk order, as the solo scan does;
//   - cold cached fragments ride the device cache per closed predicate
//     (warm images make the K passes bus-free);
//   - host fragments are streamed ONCE through
//     exec.SumFloat64WhereMulti with every predicate folding the piece
//     stream in solo order;
//   - the delta patch walks rows outer / predicates inner, preserving
//     each predicate's ascending-row patch order.
//
// Because all K answers derive from one snapshot taken after every
// batched request arrived, handing result k to requester k is a valid
// linearization of the batch.
//
// The result cache rides the same pass: each predicate is probed
// individually (under the one stamp the shared RLock section freezes),
// hits drop out of the batch, and only the missing predicates pay the
// scan — their answers are published for future repeats. Mixing cached
// and fresh answers is sound because a hit requires stamp equality:
// both were computed over byte-identical base state.
func (t *Table) SumFloat64WhereMulti(col int, preds []exec.Pred[float64]) ([]float64, []int64, error) {
	if col < 0 || col >= t.s.Arity() {
		return nil, nil, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return nil, nil, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	sums := make([]float64, len(preds))
	counts := make([]int64, len(preds))
	if len(preds) == 0 {
		return sums, counts, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	// The monitor sees K logical column scans: the batch changes the
	// execution cost, not the workload the adaptation layer reasons
	// about.
	for range preds {
		t.mon.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{col}})
	}

	cache := t.eng.rescache
	if cache == nil {
		return t.sumWhereMultiLocked(col, preds, sums, counts, identityIdx(len(preds)))
	}
	cacheable := t.deltas.Versions() == 0
	var st rescache.Stamp
	if cacheable {
		st, cacheable = t.stampLocked(col)
	}
	keys := make([]rescache.Key, len(preds))
	var missIdx []int
	var missPreds []exec.Pred[float64]
	for k, p := range preds {
		if !cacheable {
			cache.Bypass()
			missIdx = append(missIdx, k)
			missPreds = append(missPreds, p)
			continue
		}
		keys[k] = t.aggCacheKey(rescache.OpSumWhere, col, 0, p, true)
		if v, ok := cache.Lookup(keys[k], st); ok {
			sums[k], counts[k] = v.Sum, v.Count
			continue
		}
		missIdx = append(missIdx, k)
		missPreds = append(missPreds, p)
	}
	if len(missPreds) == 0 {
		return sums, counts, nil
	}
	if _, _, err := t.sumWhereMultiLocked(col, missPreds, sums, counts, missIdx); err != nil {
		return nil, nil, err
	}
	if cacheable && t.deltas.Versions() == 0 {
		for _, k := range missIdx {
			cache.Put(keys[k], st, rescache.Value{Sum: sums[k], Count: counts[k]})
		}
	}
	return sums, counts, nil
}

// identityIdx returns [0, 1, ..., n-1].
func identityIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// sumWhereMultiLocked runs the shared pass for preds under the caller's
// read lock, scattering result j into sums[outIdx[j]]/counts[outIdx[j]].
// It returns the same slices for the no-cache fast path.
func (t *Table) sumWhereMultiLocked(col int, preds []exec.Pred[float64], outSums []float64, outCounts []int64, outIdx []int) ([]float64, []int64, error) {
	sums := make([]float64, len(preds))
	counts := make([]int64, len(preds))
	reader := t.txm.Begin()
	defer reader.Abort()

	closed := make([]bool, len(preds))
	anyClosed := false
	for k, p := range preds {
		_, _, closed[k] = exec.ClosedFloat64(p)
		anyClosed = anyClosed || closed[k]
	}

	// One walk of the chunk list assembles the piece sets every
	// predicate shares. hostPieces holds all non-resident pieces in
	// chunk order with a per-piece cache-eligibility mark: closed
	// predicates scan the eligible subset on the device, open predicates
	// scan everything on the host — the same split the solo scan makes.
	rows := t.rel.Rows()
	type residentCol struct {
		v    layout.ColVector
		zone *stats.Zone
	}
	var resident []residentCol
	var hostPieces []exec.Piece
	var cacheEligible []bool
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		frag, err := t.fragmentForCol(c, col)
		if err != nil {
			return nil, nil, err
		}
		v, err := frag.ColVector(col)
		if err != nil {
			return nil, nil, err
		}
		if frag.Space() == t.env.GPU.Allocator().Space() {
			resident = append(resident, residentCol{v: v, zone: frag.Stats(col)})
			continue
		}
		piece := exec.Piece{
			Rows:   layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
			Vec:    v,
			Zone:   frag.Stats(col),
			FragID: frag.ID(), FragVersion: frag.Version(),
		}
		t.attachCompressed(&piece, c, col)
		hostPieces = append(hostPieces, piece)
		cacheEligible = append(cacheEligible, t.eng.opts.DeviceCache && t.env.Cache != nil && c.state == cold)
	}

	// Device-resident fragments: per predicate in chunk order, zone
	// decision before the launch, exactly the solo path.
	for k, p := range preds {
		for _, rc := range resident {
			bytes := int64(rc.v.Len) * int64(rc.v.Size)
			if !exec.ZoneAdmitsFloat64(rc.zone, p) {
				exec.NoteZoneDecision(false, bytes)
				continue
			}
			exec.NoteZoneDecision(true, bytes)
			lo, hi, ok := exec.ClosedFloat64(p)
			if !ok {
				continue
			}
			dv := device.Vec{Data: rc.v.Data, Base: rc.v.Base, Stride: rc.v.Stride, Size: rc.v.Size, Len: rc.v.Len}
			cfg := device.DefaultReduceConfig()
			if rc.v.Len < cfg.Blocks*2 {
				cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
			}
			part, cnt, err := t.env.GPU.ReduceSumFloat64Where(dv, lo, hi, cfg)
			if err != nil {
				return nil, nil, err
			}
			sums[k] += part
			counts[k] += cnt
		}
	}

	// Cold cached fragments per closed predicate: the first predicate
	// warms the image, the rest scan it for zero bus bytes.
	var cachePieces, hostShared []exec.Piece
	for i, piece := range hostPieces {
		if cacheEligible[i] {
			cachePieces = append(cachePieces, piece)
		} else {
			hostShared = append(hostShared, piece)
		}
	}
	if len(cachePieces) > 0 && anyClosed {
		ds := t.env.DeviceExec(t.rel.Name())
		for k, p := range preds {
			if !closed[k] {
				continue
			}
			devSum, devN, err := ds.SumFloat64Where(col, cachePieces, p)
			if err != nil {
				return nil, nil, err
			}
			sums[k] += devSum
			counts[k] += devN
		}
	}

	// Shared host pass: closed predicates over the non-cached pieces,
	// open predicates over everything, each class in one streamed scan.
	var closedPreds, openPreds []exec.Pred[float64]
	var closedIdx, openIdx []int
	for k, p := range preds {
		if closed[k] {
			closedPreds = append(closedPreds, p)
			closedIdx = append(closedIdx, k)
		} else {
			openPreds = append(openPreds, p)
			openIdx = append(openIdx, k)
		}
	}
	scatter := func(idx []int, s []float64, n []int64, err error) error {
		if err != nil {
			return err
		}
		for j, k := range idx {
			sums[k] += s[j]
			counts[k] += n[j]
		}
		return nil
	}
	if len(closedPreds) > 0 {
		hp := hostShared
		if len(cachePieces) == 0 {
			hp = hostPieces // identical set; keep the one walk
		}
		s, n, err := exec.SumFloat64WhereMulti(t.cfg, hp, closedPreds)
		if err := scatter(closedIdx, s, n, err); err != nil {
			return nil, nil, err
		}
	}
	if len(openPreds) > 0 {
		s, n, err := exec.SumFloat64WhereMulti(t.cfg, hostPieces, openPreds)
		if err := scatter(openIdx, s, n, err); err != nil {
			return nil, nil, err
		}
	}

	// Patch the snapshot's visible versions over each predicate's base
	// contribution: rows outer, predicates inner, so every predicate
	// sees the solo scan's ascending-row patch order.
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 {
			continue
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return nil, nil, err
		}
		base, err := t.baseValue(row, col)
		if err != nil {
			return nil, nil, err
		}
		for k, p := range preds {
			if p.Match(base.F) {
				sums[k] -= base.F
				counts[k]--
			}
			if p.Match(rec[col].F) {
				sums[k] += rec[col].F
				counts[k]++
			}
		}
	}
	for j := range preds {
		outSums[outIdx[j]] = sums[j]
		outCounts[outIdx[j]] = counts[j]
	}
	return outSums, outCounts, nil
}
