package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// Result caching in the reference engine rides one concurrency fact:
// every operation that mutates base fragments — Insert, Merge, Adapt,
// PlaceColumn, EvictColumn, freeze — takes the exclusive table lock,
// while queries and MVCC point updates share the read lock. Under one
// RLock section the fragment-version vector is therefore FROZEN: a
// stamp taken anywhere in the section describes the base state for the
// whole section. The only state that can move under a concurrent RLock
// holder is the delta store, and it moves monotonically — commits only
// add versions; Forget/Prune run inside Merge, which needs the write
// lock. So:
//
//   - deltas.Versions() == 0 observed at any point of an RLock section
//     means it was 0 at every earlier point of the section;
//   - checking it AFTER executing a scan proves the scan patched
//     nothing and its answer is a pure function of the stamped base
//     state — safe to publish under that stamp;
//   - checking it BEFORE a lookup proves a stamp-equal cached entry
//     answers the current state (serving it linearizes the request
//     before any commit racing with this section, which is valid — the
//     request held no ordering claim over that commit).
//
// Point reads sharpen both checks to one row (deltas.LatestTS(row),
// equally monotone under RLock) and one chunk's fragments, so an
// insert or merge elsewhere in the table does not invalidate them.

// stampLocked collects the fragment-version vector the chunk walk over
// the given columns folds, in walk order. Caller holds t.mu. ok=false
// when a fragment cannot be resolved (the caller's own walk will
// surface the error; the query just runs uncached).
func (t *Table) stampLocked(cols ...int) (rescache.Stamp, bool) {
	rows := t.rel.Rows()
	st := rescache.Stamp{Rows: rows}
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		for _, col := range cols {
			frag, err := t.fragmentForCol(c, col)
			if err != nil {
				return rescache.Stamp{}, false
			}
			st.Frags = append(st.Frags, rescache.FragVer{ID: frag.ID(), Ver: frag.Version()})
		}
	}
	return st, true
}

// chunkStampLocked stamps just the fragments backing one chunk — the
// precise validity domain of a point read. Caller holds t.mu.
func (t *Table) chunkStampLocked(c *chunk) rescache.Stamp {
	var st rescache.Stamp
	if c.state == hot {
		st.Frags = append(st.Frags, rescache.FragVer{ID: c.nsm.ID(), Ver: c.nsm.Version()})
		return st
	}
	st.Frags = make([]rescache.FragVer, 0, len(c.frags))
	for _, f := range c.frags {
		st.Frags = append(st.Frags, rescache.FragVer{ID: f.ID(), Ver: f.Version()})
	}
	return st
}

// aggCacheKey builds the cache key of an aggregate query, normalizing
// the predicate so semantically identical spellings share the entry.
func (t *Table) aggCacheKey(op rescache.Op, col, keyCol int, p exec.Pred[float64], hasPred bool) rescache.Key {
	k := rescache.Key{Table: t.rel.Name(), Op: op, Col: col, KeyCol: keyCol, HasPred: hasPred}
	if hasPred {
		k.Pred = exec.Normalize(p)
	}
	return k
}

// aggCacheBegin is the shared prologue of every cached aggregate.
// Caller holds t.mu (read side). With the result cache enabled and the
// delta store empty it builds the key and column stamp and reports
// cacheable=true; an unusable query (hot deltas in the snapshot,
// unresolvable fragment) records a Bypass instead. The returned cache
// is nil only when caching is disabled engine-wide.
func (t *Table) aggCacheBegin(op rescache.Op, col, keyCol int, p exec.Pred[float64], hasPred bool) (*rescache.Cache, rescache.Key, rescache.Stamp, bool) {
	cache := t.eng.rescache
	if cache == nil {
		return nil, rescache.Key{}, rescache.Stamp{}, false
	}
	if t.deltas.Versions() == 0 {
		cols := []int{col}
		if op == rescache.OpGroupSum || op == rescache.OpGroupSumWhere {
			cols = []int{keyCol, col}
		}
		if st, ok := t.stampLocked(cols...); ok {
			return cache, t.aggCacheKey(op, col, keyCol, p, hasPred), st, true
		}
	}
	cache.Bypass()
	return cache, rescache.Key{}, rescache.Stamp{}, false
}

// aggCachePut publishes an aggregate result if the RLock section stayed
// delta-free end to end: Versions only grows under the read lock, so 0
// after execution proves the scan patched nothing and its answer is a
// pure function of the stamped base state.
func (t *Table) aggCachePut(cache *rescache.Cache, k rescache.Key, st rescache.Stamp, v rescache.Value, cacheable bool) {
	if cacheable && t.deltas.Versions() == 0 {
		cache.Put(k, st, v)
	}
}

// VersionStamp exposes the stamp protocol to cross-engine tests and
// external caches: the fragment-version vector a scan over cols would
// fold. ok is false when the table is not stampable — an unresolvable
// column, or live MVCC deltas, whose contents a fragment stamp cannot
// describe.
func (t *Table) VersionStamp(cols ...int) (rescache.Stamp, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.deltas.Versions() != 0 {
		return rescache.Stamp{}, false
	}
	return t.stampLocked(cols...)
}

// rowCacheKey builds the cache key of a point read.
func (t *Table) rowCacheKey(row uint64) rescache.Key {
	return rescache.Key{Table: t.rel.Name(), Op: rescache.OpGet, Row: row}
}

// The Cached* methods are the serving layer's pre-admission fast path:
// pure cache consultations that never execute a scan. A hit costs the
// read lock, an O(#fragments) stamp walk and a map probe; anything
// else — cache disabled, hot deltas, invalid column, miss — reports
// false and the caller proceeds to the normal (batched) execution
// path, whose internal cache Lookup records the miss.

// CachedSumFloat64 answers SumFloat64(col) from the cache only.
func (t *Table) CachedSumFloat64(col int) (float64, bool) {
	v, ok := t.cachedAgg(rescache.OpSum, col, 0, exec.Pred[float64]{}, false)
	return v.Sum, ok
}

// CachedSumFloat64Where answers SumFloat64Where(col, p) from the cache
// only. CountWhere shares the entry: Count is the second return.
func (t *Table) CachedSumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, bool) {
	v, ok := t.cachedAgg(rescache.OpSumWhere, col, 0, p, true)
	return v.Sum, v.Count, ok
}

// CachedGroupSumFloat64Where answers GroupSumFloat64Where from the
// cache only.
func (t *Table) CachedGroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, bool) {
	v, ok := t.cachedAgg(rescache.OpGroupSumWhere, valCol, keyCol, p, true)
	return v.Groups, ok
}

// cachedAgg is the shared lookup-only aggregate path.
func (t *Table) cachedAgg(op rescache.Op, col, keyCol int, p exec.Pred[float64], hasPred bool) (rescache.Value, bool) {
	cache := t.eng.rescache
	if cache == nil {
		return rescache.Value{}, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.deltas.Versions() != 0 {
		return rescache.Value{}, false
	}
	cols := []int{col}
	if op == rescache.OpGroupSum || op == rescache.OpGroupSumWhere {
		cols = []int{keyCol, col}
	}
	st, ok := t.stampLocked(cols...)
	if !ok {
		return rescache.Value{}, false
	}
	return cache.Peek(t.aggCacheKey(op, col, keyCol, p, hasPred), st)
}

// CachedGet answers Get(row) from the cache only.
func (t *Table) CachedGet(row uint64) (schema.Record, bool) {
	cache := t.eng.rescache
	if cache == nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row >= t.rel.Rows() || t.deltas.LatestTS(row) != 0 {
		return nil, false
	}
	c, err := t.chunkFor(row)
	if err != nil {
		return nil, false
	}
	v, ok := cache.Peek(t.rowCacheKey(row), t.chunkStampLocked(c))
	if !ok {
		return nil, false
	}
	return v.Rec, true
}

// GetMulti materializes many rows from one snapshot — the storage half
// of the serving layer's gather fan-in. Results are bit-identical to
// len(rowIDs) solo Gets against the same snapshot, but the pass takes
// the lock once and charges device-resident gathers per CHUNK: k rows
// hitting one chunk's device fragments cost one bus transfer of k-fold
// bytes (one fixed transfer latency) instead of k separate transfers.
// Clean rows are served from / published to the result cache per row.
func (t *Table) GetMulti(rowIDs []uint64) ([]schema.Record, error) {
	out := make([]schema.Record, len(rowIDs))
	if len(rowIDs) == 0 {
		return out, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	rows := t.rel.Rows()
	cache := t.eng.rescache
	gathers := make(map[*chunk]int64)
	for i, row := range rowIDs {
		if row >= rows {
			return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, rows)
		}
		t.mon.Observe(workload.Op{Kind: workload.PointRead, Cols: layout.AllCols(t.s)})
		var key rescache.Key
		var st rescache.Stamp
		cacheable := false
		if cache != nil {
			if t.deltas.LatestTS(row) == 0 {
				c, err := t.chunkFor(row)
				if err != nil {
					return nil, err
				}
				key, st = t.rowCacheKey(row), t.chunkStampLocked(c)
				cacheable = true
				if v, ok := cache.Lookup(key, st); ok {
					out[i] = v.Rec
					continue
				}
			} else {
				cache.Bypass()
			}
		}
		if rec, err := reader.Read(t.deltas, row); err == nil {
			out[i] = rec
			continue
		} else if !errors.Is(err, tx.ErrNotFound) {
			return nil, err
		}
		c, err := t.chunkFor(row)
		if err != nil {
			return nil, err
		}
		rec, err := t.recordFromChunk(c, row)
		if err != nil {
			return nil, err
		}
		gathers[c]++
		out[i] = rec
		// Publish only if the row is STILL delta-free: LatestTS is
		// monotone under RLock, so 0 here proves 0 across the whole read.
		if cacheable && t.deltas.LatestTS(row) == 0 {
			cache.Put(key, st, rescache.Value{Rec: rec})
		}
	}
	for c, k := range gathers {
		t.chargeDeviceGather(c, k)
	}
	return out, nil
}
