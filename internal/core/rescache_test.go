package core

import (
	"math"
	"testing"

	"hybridstore/internal/exec"
	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

// cacheOpts enables the result cache on the standard test fixture.
func cacheOpts() Options {
	return Options{ChunkRows: 128, ResultCacheBytes: 1 << 20}
}

func cacheStats(t *testing.T, tbl *Table) (hits, misses, stale, lookups int64) {
	t.Helper()
	s := tbl.eng.rescache.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("invariant: hits(%d) + misses(%d) != lookups(%d)", s.Hits, s.Misses, s.Lookups)
	}
	return s.Hits, s.Misses, s.Stale, s.Lookups
}

func TestResultCacheAggregateRepeat(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 600)
	defer tbl.Free()
	p := exec.Gt(2.5)

	sum1, n1, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _, _ := cacheStats(t, tbl)
	if hits != 0 {
		t.Fatalf("first query hit the cache: %d hits", hits)
	}
	sum2, n2, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sum1) != math.Float64bits(sum2) || n1 != n2 {
		t.Fatalf("cached repeat diverged: (%v,%d) vs (%v,%d)", sum1, n1, sum2, n2)
	}
	if hits, _, _, _ = cacheStats(t, tbl); hits != 1 {
		t.Fatalf("repeat did not hit: %d hits", hits)
	}

	// count_where shares the sum_where entry.
	n3, err := tbl.CountWhereFloat64(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 {
		t.Fatalf("count = %d, want %d", n3, n1)
	}
	if hits, _, _, _ = cacheStats(t, tbl); hits != 2 {
		t.Fatalf("count_where did not share the entry: %d hits", hits)
	}

	// Semantically identical spellings share one entry: between with
	// equal bounds normalizes to eq.
	if _, _, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Eq(42.0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Between(42.0, 42.0)); err != nil {
		t.Fatal(err)
	}
	if hits, _, _, _ = cacheStats(t, tbl); hits != 3 {
		t.Fatalf("between(42,42) did not share eq(42)'s entry: %d hits", hits)
	}
}

func TestResultCacheInvalidationByWrite(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 600)
	defer tbl.Free()
	p := exec.Lt(5.0)

	want1, wantN1, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}

	// An MVCC update makes the table unanswerable from fragment stamps
	// (the delta store is live): queries bypass, never serve stale sums.
	if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(2.5)); err != nil {
		t.Fatal(err)
	}
	sum2, _, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	wantPatched := want1 - workload.ItemPrice(3) + 2.5
	if math.Abs(sum2-wantPatched) > 1e-9 {
		t.Fatalf("post-update sum %v, want %v", sum2, wantPatched)
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != 0 {
		t.Fatalf("served a cached result across a live delta: %d hits", hits)
	}

	// Merge folds the delta into base fragments, bumping their versions:
	// the table is stampable again but the old entry is stale — the next
	// probe drops it and recomputes.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	sum3, n3, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	// Merge re-linearizes the rows, so the fold order (and thus the
	// exact bits) may differ from the MVCC-patched answer; the value is
	// the same.
	if math.Abs(sum3-sum2) > 1e-9 {
		t.Fatalf("post-merge sum %v, want %v", sum3, sum2)
	}
	if _, _, stale, _ := cacheStats(t, tbl); stale != 1 {
		t.Fatalf("stale entry not accounted: stale=%d", stale)
	}
	// And the recomputed answer is cached again.
	sum4, n4, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sum4) != math.Float64bits(sum3) || n4 != n3 {
		t.Fatalf("post-merge repeat diverged")
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != 1 {
		t.Fatalf("post-merge repeat did not hit")
	}
	_ = wantN1
}

func TestResultCacheGroupBy(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 500)
	defer tbl.Free()
	p := exec.Gt(1.5)

	g1, err := tbl.GroupSumFloat64Where(1, workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := tbl.GroupSumFloat64Where(1, workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) == 0 || len(g1) != len(g2) {
		t.Fatalf("group counts diverged or empty: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i].Key != g2[i].Key || g1[i].Count != g2[i].Count ||
			math.Float64bits(g1[i].Sum) != math.Float64bits(g2[i].Sum) {
			t.Fatalf("group %d diverged: %+v vs %+v", i, g1[i], g2[i])
		}
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != 1 {
		t.Fatalf("grouped repeat did not hit: %d", hits)
	}
	// The hit returns a private copy: scribbling on it must not poison
	// future hits.
	g2[0].Sum = -1
	g3, err := tbl.GroupSumFloat64Where(1, workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(g3[0].Sum) != math.Float64bits(g1[0].Sum) {
		t.Fatal("cached groups alias a caller's slice")
	}

	// An insert bumps a fragment version: stale, recompute, new answer.
	if _, err := tbl.Insert(workload.Item(500)); err != nil {
		t.Fatal(err)
	}
	g4, err := tbl.GroupSumFloat64Where(1, workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, g := range g4 {
		total += g.Count
	}
	wantN, err := tbl.CountWhereFloat64(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantN || total <= 0 {
		t.Fatalf("post-insert groups cover %d rows, want %d", total, wantN)
	}
}

func TestResultCachePointReads(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 400)
	defer tbl.Free()

	r1, err := tbl.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tbl.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("cached Get diverged: %v vs %v", r1, r2)
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != 1 {
		t.Fatalf("repeat Get did not hit: %d", hits)
	}

	// GetByPK resolves to the same row and shares its entry.
	r3, err := tbl.GetByPK(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Equal(r1) {
		t.Fatalf("GetByPK(7) = %v, want %v", r3, r1)
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != 2 {
		t.Fatalf("GetByPK did not share the row entry: %d hits", hits)
	}

	// A cached hit returns a private record: mutating it must not poison
	// the entry.
	r2[1] = schema.FloatValue(999)
	r4, err := tbl.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Equal(r1) {
		t.Fatal("cached record aliases a caller's record")
	}

	// An updated row is served through MVCC, never from the cache, and
	// an insert elsewhere does NOT invalidate this chunk's entries.
	if err := tbl.Update(7, workload.ItemPriceCol, schema.FloatValue(1.5)); err != nil {
		t.Fatal(err)
	}
	r5, err := tbl.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if r5[workload.ItemPriceCol].F != 1.5 {
		t.Fatalf("post-update Get served stale price %v", r5[workload.ItemPriceCol].F)
	}

	// GetMulti agrees bit-for-bit with solo Gets, duplicates included.
	rows := []uint64{0, 7, 7, 399, 128, 0}
	recs, err := tbl.GetMulti(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		solo, err := tbl.Get(row)
		if err != nil {
			t.Fatal(err)
		}
		if !recs[i].Equal(solo) {
			t.Fatalf("GetMulti[%d] (row %d) = %v, want %v", i, row, recs[i], solo)
		}
	}
}

func TestResultCacheSharedScanPartialHits(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 600)
	defer tbl.Free()
	warm := exec.Gt(3.0)
	cold := exec.Lt(2.0)

	wantW, wantWN, err := tbl.SumFloat64Where(workload.ItemPriceCol, warm)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantCN, err := tbl.SumFloat64Where(workload.ItemPriceCol, cold)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _, _, _ := cacheStats(t, tbl)

	sums, counts, err := tbl.SumFloat64WhereMulti(workload.ItemPriceCol, []exec.Pred[float64]{warm, cold})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sums[0]) != math.Float64bits(wantW) || counts[0] != wantWN ||
		math.Float64bits(sums[1]) != math.Float64bits(wantC) || counts[1] != wantCN {
		t.Fatalf("multi = (%v,%d),(%v,%d); want (%v,%d),(%v,%d)",
			sums[0], counts[0], sums[1], counts[1], wantW, wantWN, wantC, wantCN)
	}
	if hits, _, _, _ := cacheStats(t, tbl); hits != hits0+2 {
		t.Fatalf("multi over two warm preds hit %d times, want %d", hits-hits0, 2)
	}
}

// TestResultCacheCheckpointRestore pins the restart-safety property: a
// table restored from a checkpoint under the SAME name on the SAME
// engine (worst case: every cache key collides with pre-restart
// entries) must never serve a pre-restart result. Restored fragments
// get fresh process-global IDs, so every old stamp mismatches — the
// first probe of each colliding key counts stale, drops the entry and
// recomputes.
func TestResultCacheCheckpointRestore(t *testing.T) {
	e, tbl := newTable(t, cacheOpts(), 300)
	p := exec.Lt(3.0)

	want, wantN, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.SumFloat64Where(workload.ItemPriceCol, p); err != nil {
		t.Fatal(err)
	}
	r0, err := tbl.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _, stale0, _ := cacheStats(t, tbl)
	if hits0 != 1 {
		t.Fatalf("pre-restart repeat did not hit: %d", hits0)
	}

	enc := &wal.Encoder{}
	if _, _, err := tbl.CheckpointTo(enc); err != nil {
		t.Fatal(err)
	}
	tbl.Free()

	rt, err := e.RestoreTable("item", workload.ItemSchema(), wal.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Free()

	// The colliding aggregate key must NOT hit; it must recompute the
	// (byte-identical, since restored fragments are byte-identical)
	// answer and count the dead entry as stale.
	sum, n, err := rt.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sum) != math.Float64bits(want) || n != wantN {
		t.Fatalf("restored sum (%v,%d), want (%v,%d)", sum, n, want, wantN)
	}
	hits1, _, stale1, _ := cacheStats(t, rt)
	if hits1 != hits0 {
		t.Fatal("restored table served a pre-restart aggregate entry")
	}
	if stale1 != stale0+1 {
		t.Fatalf("pre-restart entry not accounted stale: %d -> %d", stale0, stale1)
	}

	// Same for the colliding point-read key.
	r1, err := rt.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r0) {
		t.Fatalf("restored Get(5) = %v, want %v", r1, r0)
	}
	if hits2, _, _, _ := cacheStats(t, rt); hits2 != hits0 {
		t.Fatal("restored table served a pre-restart point-read entry")
	}

	// And the restored table caches normally from here on.
	if _, _, err := rt.SumFloat64Where(workload.ItemPriceCol, p); err != nil {
		t.Fatal(err)
	}
	if hits3, _, _, _ := cacheStats(t, rt); hits3 != hits0+1 {
		t.Fatal("restored table does not cache fresh results")
	}
}

func TestVersionStampProtocol(t *testing.T) {
	_, tbl := newTable(t, cacheOpts(), 300)
	defer tbl.Free()

	s1, ok := tbl.VersionStamp(workload.ItemPriceCol)
	if !ok {
		t.Fatal("clean table not stampable")
	}
	s2, ok := tbl.VersionStamp(workload.ItemPriceCol)
	if !ok || !s1.Equal(s2) {
		t.Fatalf("stamp not stable on an untouched table: %+v vs %+v", s1, s2)
	}

	// Live deltas make the table unstampable.
	if err := tbl.Update(2, workload.ItemPriceCol, schema.FloatValue(3.5)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.VersionStamp(workload.ItemPriceCol); ok {
		t.Fatal("stampable with a live delta store")
	}

	// Merge restores stampability with a CHANGED stamp.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	s3, ok := tbl.VersionStamp(workload.ItemPriceCol)
	if !ok {
		t.Fatal("merged table not stampable")
	}
	if s1.Equal(s3) {
		t.Fatal("stamp unchanged across a merge that folded an update")
	}
}
