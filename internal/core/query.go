package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// Get materializes the current record at row: the newest committed delta
// version if one exists, else the base fragments. Delta-free rows are
// served from / published to the result cache under the stamp of just
// their chunk's fragments (see rescache.go for the validity argument).
func (t *Table) Get(row uint64) (schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row >= t.rel.Rows() {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rel.Rows())
	}
	t.mon.Observe(workload.Op{Kind: workload.PointRead, Cols: layout.AllCols(t.s)})
	cache := t.eng.rescache
	var key rescache.Key
	var st rescache.Stamp
	cacheable := false
	if cache != nil {
		if t.deltas.LatestTS(row) == 0 {
			if c, err := t.chunkFor(row); err == nil {
				key, st = t.rowCacheKey(row), t.chunkStampLocked(c)
				cacheable = true
				if v, ok := cache.Lookup(key, st); ok {
					return v.Rec, nil
				}
			}
		}
		if !cacheable {
			cache.Bypass()
		}
	}
	reader := t.txm.Begin()
	defer reader.Abort()
	rec, err := t.recordAt(reader, row)
	if err != nil {
		return nil, err
	}
	if cacheable && t.deltas.LatestTS(row) == 0 {
		cache.Put(key, st, rescache.Value{Rec: rec})
	}
	return rec, nil
}

// recordAt resolves row under the given transaction's snapshot.
func (t *Table) recordAt(x *tx.Tx, row uint64) (schema.Record, error) {
	if rec, err := x.Read(t.deltas, row); err == nil {
		return rec, nil
	} else if !errors.Is(err, tx.ErrNotFound) {
		return nil, err
	}
	return t.baseRecord(row)
}

// Update installs a new version of one field through a single-operation
// transaction; base fragments are never written (so pinned analytic
// snapshots stay stable).
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	if col < 0 || col >= t.s.Arity() {
		return fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if err := t.guardPKUpdate(col); err != nil {
		return err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row >= t.rel.Rows() {
		return fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rel.Rows())
	}
	x := t.txm.Begin()
	rec, err := t.recordAt(x, row)
	if err != nil {
		x.Abort()
		return err
	}
	rec[col] = v
	if err := x.Write(t.deltas, row, rec); err != nil {
		x.Abort()
		return err
	}
	if err := x.Commit(); err != nil {
		return err
	}
	t.mon.Observe(workload.Op{Kind: workload.PointUpdate, Row: row, Cols: []int{col}})
	return nil
}

// Materialize resolves a sorted position list against the current state.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	out := make([]schema.Record, len(positions))
	for i, p := range positions {
		if p >= t.rel.Rows() {
			return nil, fmt.Errorf("%w: position %d of %d", engine.ErrNoSuchRow, p, t.rel.Rows())
		}
		rec, err := t.recordAt(reader, p)
		if err != nil {
			return nil, err
		}
		out[i] = rec
		t.mon.Observe(workload.Op{Kind: workload.PointRead, Cols: layout.AllCols(t.s)})
	}
	return out, nil
}

// SumFloat64 aggregates col over a pinned MVCC snapshot: base fragments
// are scanned in bulk (device-resident fragments through the reduction
// kernel, host fragments through the bulk operator), then the snapshot's
// visible delta versions are patched over the base values.
func (t *Table) SumFloat64(col int) (float64, error) {
	if col < 0 || col >= t.s.Arity() {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return 0, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	t.mon.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{col}})

	cache, ck, cst, cacheable := t.aggCacheBegin(rescache.OpSum, col, 0, exec.Pred[float64]{}, false)
	if cacheable {
		if v, ok := cache.Lookup(ck, cst); ok {
			return v.Sum, nil
		}
	}

	rows := t.rel.Rows()
	var sum float64
	var hostPieces, cachePieces []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		frag, err := t.fragmentForCol(c, col)
		if err != nil {
			return 0, err
		}
		v, err := frag.ColVector(col)
		if err != nil {
			return 0, err
		}
		if frag.Space() == t.env.GPU.Allocator().Space() {
			dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
			cfg := device.DefaultReduceConfig()
			if v.Len < cfg.Blocks*2 {
				cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
			}
			part, err := t.env.GPU.ReduceSumFloat64(dv, cfg)
			if err != nil {
				return 0, err
			}
			sum += part
			continue
		}
		piece := exec.Piece{
			Rows:   layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
			Vec:    v,
			FragID: frag.ID(), FragVersion: frag.Version(),
		}
		t.attachCompressed(&piece, c, col)
		// See SumFloat64Where: cold fragments ride the device cache, hot
		// chunks stay on the host operator.
		if t.eng.opts.DeviceCache && t.env.Cache != nil && c.state == cold {
			cachePieces = append(cachePieces, piece)
			continue
		}
		hostPieces = append(hostPieces, piece)
	}
	if len(cachePieces) > 0 {
		ds := t.env.DeviceExec(t.rel.Name())
		devSum, err := ds.SumFloat64(col, cachePieces)
		if err != nil {
			return 0, err
		}
		sum += devSum
	}
	hostSum, err := exec.SumFloat64(t.cfg, hostPieces)
	if err != nil {
		return 0, err
	}
	sum += hostSum

	// Patch the snapshot's visible versions over the base values.
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 {
			continue
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return 0, err
		}
		base, err := t.baseValue(row, col)
		if err != nil {
			return 0, err
		}
		sum += rec[col].F - base.F
	}
	t.aggCachePut(cache, ck, cst, rescache.Value{Sum: sum}, cacheable)
	return sum, nil
}

// SumFloat64Where aggregates (sum, count) of col over the rows matching
// p, skipping base fragments whose zone maps prove them match-free.
// Device-resident fragments decide before paying the kernel launch; host
// fragments carry their zones into the fused bulk operator. The MVCC
// patch stays exact under pruning because zones are conservative: a base
// value that matches p always lives in a fragment whose zone admits p,
// so it was part of the base scan and can be subtracted.
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	if col < 0 || col >= t.s.Arity() {
		return 0, 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return 0, 0, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	t.mon.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{col}})

	cache, ck, cst, cacheable := t.aggCacheBegin(rescache.OpSumWhere, col, 0, p, true)
	if cacheable {
		if v, ok := cache.Lookup(ck, cst); ok {
			return v.Sum, v.Count, nil
		}
	}

	rows := t.rel.Rows()
	_, _, closed := exec.ClosedFloat64(p)
	var sum float64
	var n int64
	var hostPieces, cachePieces []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		frag, err := t.fragmentForCol(c, col)
		if err != nil {
			return 0, 0, err
		}
		v, err := frag.ColVector(col)
		if err != nil {
			return 0, 0, err
		}
		if frag.Space() == t.env.GPU.Allocator().Space() {
			bytes := int64(v.Len) * int64(v.Size)
			if !exec.ZoneAdmitsFloat64(frag.Stats(col), p) {
				exec.NoteZoneDecision(false, bytes)
				continue
			}
			exec.NoteZoneDecision(true, bytes)
			lo, hi, ok := exec.ClosedFloat64(p)
			if !ok {
				continue
			}
			dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
			cfg := device.DefaultReduceConfig()
			if v.Len < cfg.Blocks*2 {
				cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
			}
			part, cnt, err := t.env.GPU.ReduceSumFloat64Where(dv, lo, hi, cfg)
			if err != nil {
				return 0, 0, err
			}
			sum += part
			n += cnt
			continue
		}
		piece := exec.Piece{
			Rows:   layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
			Vec:    v,
			Zone:   frag.Stats(col),
			FragID: frag.ID(), FragVersion: frag.Version(),
		}
		t.attachCompressed(&piece, c, col)
		// Cold host fragments scan on the device through the fragment
		// cache when enabled: the first scan ships the column image, later
		// scans over unchanged fragments reuse it for zero bus bytes. Hot
		// chunks stay on the host operator — every insert would invalidate
		// their image, so caching them only thrashes the bus.
		if t.eng.opts.DeviceCache && t.env.Cache != nil && c.state == cold && closed {
			cachePieces = append(cachePieces, piece)
			continue
		}
		hostPieces = append(hostPieces, piece)
	}
	if len(cachePieces) > 0 {
		ds := t.env.DeviceExec(t.rel.Name())
		devSum, devN, err := ds.SumFloat64Where(col, cachePieces, p)
		if err != nil {
			return 0, 0, err
		}
		sum += devSum
		n += devN
	}
	hostSum, hostN, err := exec.SumFloat64Where(t.cfg, hostPieces, p)
	if err != nil {
		return 0, 0, err
	}
	sum += hostSum
	n += hostN

	// Patch the snapshot's visible versions over the base contribution.
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 {
			continue
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return 0, 0, err
		}
		base, err := t.baseValue(row, col)
		if err != nil {
			return 0, 0, err
		}
		if p.Match(base.F) {
			sum -= base.F
			n--
		}
		if p.Match(rec[col].F) {
			sum += rec[col].F
			n++
		}
	}
	t.aggCachePut(cache, ck, cst, rescache.Value{Sum: sum, Count: n}, cacheable)
	return sum, n, nil
}

// CountWhereFloat64 counts the rows matching p on col with the same
// pruning as SumFloat64Where.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	_, n, err := t.SumFloat64Where(col, p)
	return n, err
}

// attachCompressed swaps a cold piece's execution format to the chunk's
// side-car compressed image when one covers the column: the vector keeps
// its logical metadata but drops the dense bytes, so the host operator
// evaluates in the compressed domain and the device path ships the
// compressed image over the bus.
func (t *Table) attachCompressed(piece *exec.Piece, c *chunk, col int) {
	if !t.eng.opts.Compress || c.state != cold || col >= len(c.comp) || c.comp[col] == nil {
		return
	}
	if c.comp[col].Len() != piece.Vec.Len {
		return // clipped view; the image covers the whole chunk
	}
	piece.Comp = c.comp[col]
	piece.Vec.Data = nil
	piece.Vec.Base = 0
}

// fragmentForCol returns the base fragment storing (chunk, col).
func (t *Table) fragmentForCol(c *chunk, col int) (*layout.Fragment, error) {
	if c.state == hot {
		return c.nsm, nil
	}
	for gi, f := range c.frags {
		for _, gc := range c.groups[gi] {
			if gc == col {
				return f, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: chunk %v col %d", layout.ErrNotCovered, c.rows, col)
}

// baseValue reads one field from the base fragments.
func (t *Table) baseValue(row uint64, col int) (schema.Value, error) {
	c, err := t.chunkFor(row)
	if err != nil {
		return schema.Value{}, err
	}
	f, err := t.fragmentForCol(c, col)
	if err != nil {
		return schema.Value{}, err
	}
	return f.Get(int(row-c.rows.Begin), col)
}

// Txn is an interactive multi-operation transaction over the table with
// snapshot isolation (reads see the snapshot plus own writes; commit is
// first-committer-wins).
type Txn struct {
	t *Table
	x *tx.Tx
}

// Begin opens a transaction.
func (t *Table) Begin() *Txn { return &Txn{t: t, x: t.txm.Begin()} }

// Read returns the record at row under the transaction's snapshot.
func (x *Txn) Read(row uint64) (schema.Record, error) {
	x.t.mu.RLock()
	defer x.t.mu.RUnlock()
	if row >= x.t.rel.Rows() {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, x.t.rel.Rows())
	}
	return x.t.recordAt(x.x, row)
}

// Update buffers a field update.
func (x *Txn) Update(row uint64, col int, v schema.Value) error {
	if err := x.t.guardPKUpdate(col); err != nil {
		return err
	}
	rec, err := x.Read(row)
	if err != nil {
		return err
	}
	rec[col] = v
	return x.x.Write(x.t.deltas, row, rec)
}

// Commit installs the buffered writes (ErrConflict on lost races).
func (x *Txn) Commit() error { return x.x.Commit() }

// Abort discards the transaction.
func (x *Txn) Abort() { x.x.Abort() }

// Merge folds delta versions no active snapshot needs back into the base
// fragments and prunes the version store — the background pass that keeps
// scan patching cheap. Cold fragments are rewritten in place (they are
// only immutable with respect to *transactions*).
func (t *Table) Merge() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := sfMerge.Start()
	defer sp.End()
	minTS := t.txm.MinActiveTS()
	rows := t.rel.Rows()
	reader := t.txm.Begin()
	defer reader.Abort()
	// Cold fragments rewritten below already stop validating through their
	// version bumps; collecting them lets the device cache release the
	// stale images' memory eagerly rather than waiting for capacity
	// pressure.
	touched := make(map[*layout.Fragment]bool)
	touchedChunks := make(map[*chunk]bool)
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 || t.deltas.LatestTS(row) > minTS {
			continue
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return err
		}
		c, err := t.chunkFor(row)
		if err != nil {
			return err
		}
		i := int(row - c.rows.Begin)
		if c.state == hot {
			for col := 0; col < t.s.Arity(); col++ {
				if err := c.nsm.Set(i, col, rec[col]); err != nil {
					return err
				}
			}
		} else {
			for gi, f := range c.frags {
				for _, col := range c.groups[gi] {
					if err := f.Set(i, col, rec[col]); err != nil {
						return err
					}
				}
				touched[f] = true
			}
			touchedChunks[c] = true
		}
		// The base now carries the settled value; the chain is redundant
		// for every snapshot at or after minTS.
		t.deltas.Forget(row)
	}
	for f := range touched {
		t.invalidateFrag(f)
	}
	// Rewritten cold bytes invalidate the side-car compressed images;
	// re-seal so later scans stay in the compressed domain.
	for c := range touchedChunks {
		t.sealChunkCompression(c)
	}
	t.deltas.Prune(minTS)
	return nil
}
