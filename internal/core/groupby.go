package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// GroupSumFloat64 computes SELECT keyCol, SUM(valCol), COUNT(*) GROUP BY
// keyCol over an MVCC snapshot: the base fragments are aggregated in bulk,
// then the snapshot's visible delta versions are patched into the group
// table (moving a row between groups when its key changed). keyCol must
// be an integer attribute, valCol a float64 one. Device-resident value
// fragments are read through the bus (charged on the simulated clock);
// grouped scans are a host-side operation in this engine.
func (t *Table) GroupSumFloat64(keyCol, valCol int) ([]exec.GroupResult, error) {
	if keyCol < 0 || keyCol >= t.s.Arity() || valCol < 0 || valCol >= t.s.Arity() {
		return nil, fmt.Errorf("%w: cols %d,%d", layout.ErrOutOfRange, keyCol, valCol)
	}
	kk := t.s.Attr(keyCol).Kind
	if kk != schema.Int64 && kk != schema.Int32 {
		return nil, fmt.Errorf("%w: group key %s is %s", exec.ErrBadColumn, t.s.Attr(keyCol).Name, kk)
	}
	if t.s.Attr(valCol).Kind != schema.Float64 {
		return nil, fmt.Errorf("%w: aggregate %s is %s", exec.ErrBadColumn, t.s.Attr(valCol).Name, t.s.Attr(valCol).Kind)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	t.mon.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{keyCol, valCol}})

	cache, ck, cst, cacheable := t.aggCacheBegin(rescache.OpGroupSum, valCol, keyCol, exec.Pred[float64]{}, false)
	if cacheable {
		if v, ok := cache.Lookup(ck, cst); ok {
			return v.Groups, nil
		}
	}

	rows := t.rel.Rows()
	var keys, vals []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		kp, devBytes, err := t.pieceFor(c, keyCol)
		if err != nil {
			return nil, err
		}
		vp, devBytes2, err := t.pieceFor(c, valCol)
		if err != nil {
			return nil, err
		}
		if t.env.Clock != nil && devBytes+devBytes2 > 0 {
			t.env.Clock.Advance(t.env.GPU.Profile().TransferNs(devBytes + devBytes2))
		}
		keys = append(keys, kp)
		vals = append(vals, vp)
	}
	groups, err := exec.GroupSumFloat64(t.cfg, keys, vals)
	if err != nil {
		return nil, err
	}
	table := make(map[int64]*exec.GroupResult, len(groups))
	for i := range groups {
		g := groups[i]
		table[g.Key] = &g
	}

	// Patch the snapshot's visible versions: move rows between groups.
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 {
			continue
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return nil, err
		}
		baseKeyV, err := t.baseValue(row, keyCol)
		if err != nil {
			return nil, err
		}
		baseValV, err := t.baseValue(row, valCol)
		if err != nil {
			return nil, err
		}
		if g := table[baseKeyV.I]; g != nil {
			g.Sum -= baseValV.F
			g.Count--
		}
		cur := table[rec[keyCol].I]
		if cur == nil {
			cur = &exec.GroupResult{Key: rec[keyCol].I}
			table[rec[keyCol].I] = cur
		}
		cur.Sum += rec[valCol].F
		cur.Count++
	}
	out := make([]exec.GroupResult, 0, len(table))
	for _, g := range table {
		if g.Count > 0 {
			out = append(out, *g)
		}
	}
	exec.SortGroupResults(out)
	t.aggCachePut(cache, ck, cst, rescache.Value{Groups: out}, cacheable)
	return out, nil
}

// GroupSumFloat64Where computes SELECT keyCol, SUM(valCol), COUNT(*)
// WHERE p GROUP BY keyCol over an MVCC snapshot with the fused
// single-pass operator: no selection vector, fragments whose value
// zones exclude p pruned with both columns' bytes saved, compressed
// cold chunks aggregated in the compressed domain. With DeviceCache on,
// cold chunk pairs run the one-launch fused group kernel through the
// fragment cache (group keys stay raw for the kernel); a device refusal
// falls back to the host fused operator and is counted. The MVCC patch
// stays exact under pruning because zones are conservative: a base
// value matching p always lives in an admitted fragment.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	if keyCol < 0 || keyCol >= t.s.Arity() || valCol < 0 || valCol >= t.s.Arity() {
		return nil, fmt.Errorf("%w: cols %d,%d", layout.ErrOutOfRange, keyCol, valCol)
	}
	kk := t.s.Attr(keyCol).Kind
	if kk != schema.Int64 && kk != schema.Int32 {
		return nil, fmt.Errorf("%w: group key %s is %s", exec.ErrBadColumn, t.s.Attr(keyCol).Name, kk)
	}
	if t.s.Attr(valCol).Kind != schema.Float64 {
		return nil, fmt.Errorf("%w: aggregate %s is %s", exec.ErrBadColumn, t.s.Attr(valCol).Name, t.s.Attr(valCol).Kind)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	reader := t.txm.Begin()
	defer reader.Abort()
	t.mon.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{keyCol, valCol}})

	cache, ck, cst, cacheable := t.aggCacheBegin(rescache.OpGroupSumWhere, valCol, keyCol, p, true)
	if cacheable {
		if v, ok := cache.Lookup(ck, cst); ok {
			return v.Groups, nil
		}
	}

	rows := t.rel.Rows()
	_, _, closed := exec.ClosedFloat64(p)
	var hostK, hostV, cacheK, cacheV []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		kp, devBytes, err := t.wherePieceFor(c, keyCol)
		if err != nil {
			return nil, err
		}
		vp, devBytes2, err := t.wherePieceFor(c, valCol)
		if err != nil {
			return nil, err
		}
		if t.env.Clock != nil && devBytes+devBytes2 > 0 {
			t.env.Clock.Advance(t.env.GPU.Profile().TransferNs(devBytes + devBytes2))
		}
		// Cold pairs ride the device fused group kernel through the
		// fragment cache; the key piece stays raw (the kernel sweeps it
		// alongside the values). Hot chunks stay on the host operator.
		if t.eng.opts.DeviceCache && t.env.Cache != nil && c.state == cold && closed && devBytes+devBytes2 == 0 {
			t.attachCompressed(&vp, c, valCol)
			cacheK = append(cacheK, kp)
			cacheV = append(cacheV, vp)
			continue
		}
		t.attachCompressed(&kp, c, keyCol)
		t.attachCompressed(&vp, c, valCol)
		hostK = append(hostK, kp)
		hostV = append(hostV, vp)
	}
	var devGroups []exec.GroupResult
	if len(cacheV) > 0 {
		ds := t.env.DeviceExec(t.rel.Name())
		var err error
		devGroups, err = ds.GroupSumFloat64Where(keyCol, valCol, cacheK, cacheV, p)
		if err != nil {
			// The device kernel refused the pair shape; the host fused
			// operator handles everything it cannot.
			exec.NoteGroupFusedFallback()
			hostK = append(hostK, cacheK...)
			hostV = append(hostV, cacheV...)
			devGroups = nil
		}
	}
	hostGroups, err := exec.GroupSumFloat64Where(t.cfg, hostK, hostV, p)
	if err != nil {
		return nil, err
	}
	merged := exec.MergeGroupResults(devGroups, hostGroups)

	// Patch the snapshot's visible versions: move matching rows between
	// groups, drop rows whose new value no longer matches, add rows whose
	// new value now does. The patch table materializes lazily — a fully
	// merged table (the common warm serving state) returns the fused
	// result as-is, with no second hash table and no re-sort.
	var table map[int64]*exec.GroupResult
	for row := uint64(0); row < rows; row++ {
		if t.deltas.LatestTS(row) == 0 {
			continue
		}
		if table == nil {
			table = make(map[int64]*exec.GroupResult, len(merged))
			for i := range merged {
				g := merged[i]
				table[g.Key] = &g
			}
		}
		rec, err := reader.Read(t.deltas, row)
		if err != nil {
			if errors.Is(err, tx.ErrNotFound) {
				continue
			}
			return nil, err
		}
		baseKeyV, err := t.baseValue(row, keyCol)
		if err != nil {
			return nil, err
		}
		baseValV, err := t.baseValue(row, valCol)
		if err != nil {
			return nil, err
		}
		if p.Match(baseValV.F) {
			if g := table[baseKeyV.I]; g != nil {
				g.Sum -= baseValV.F
				g.Count--
			}
		}
		if p.Match(rec[valCol].F) {
			cur := table[rec[keyCol].I]
			if cur == nil {
				cur = &exec.GroupResult{Key: rec[keyCol].I}
				table[rec[keyCol].I] = cur
			}
			cur.Sum += rec[valCol].F
			cur.Count++
		}
	}
	if table == nil {
		t.aggCachePut(cache, ck, cst, rescache.Value{Groups: merged}, cacheable)
		return merged, nil
	}
	out := make([]exec.GroupResult, 0, len(table))
	for _, g := range table {
		if g.Count > 0 {
			out = append(out, *g)
		}
	}
	exec.SortGroupResults(out)
	t.aggCachePut(cache, ck, cst, rescache.Value{Groups: out}, cacheable)
	return out, nil
}

// wherePieceFor builds one zone-carrying column piece for a chunk (the
// fused grouped scan's enriched flavor of pieceFor), reporting
// device-resident bytes for the caller's bus charge.
func (t *Table) wherePieceFor(c *chunk, col int) (exec.Piece, int64, error) {
	frag, err := t.fragmentForCol(c, col)
	if err != nil {
		return exec.Piece{}, 0, err
	}
	v, err := frag.ColVector(col)
	if err != nil {
		return exec.Piece{}, 0, err
	}
	var devBytes int64
	if frag.Space() == t.env.GPU.Allocator().Space() {
		devBytes = int64(v.Len * v.Size)
	}
	return exec.Piece{
		Rows:   layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
		Vec:    v,
		Zone:   frag.Stats(col),
		FragID: frag.ID(), FragVersion: frag.Version(),
	}, devBytes, nil
}

// pieceFor builds one column piece for a chunk, reporting device-resident
// bytes (which the caller charges to the bus).
func (t *Table) pieceFor(c *chunk, col int) (exec.Piece, int64, error) {
	frag, err := t.fragmentForCol(c, col)
	if err != nil {
		return exec.Piece{}, 0, err
	}
	v, err := frag.ColVector(col)
	if err != nil {
		return exec.Piece{}, 0, err
	}
	var devBytes int64
	if frag.Space() == t.env.GPU.Allocator().Space() {
		devBytes = int64(v.Len * v.Size)
	}
	return exec.Piece{
		Rows: layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
		Vec:  v,
	}, devBytes, nil
}
