package core

import (
	"sync"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

// TestPruneRespectsPinnedSnapshot is the regression for the
// checkpoint/prune interaction: while a checkpoint holds a pinned
// snapshot, Merge (which folds settled versions into the base and
// prunes their deltas) must not fold a version the pin cannot see —
// and folding the ones it can see must leave the visible-at-pin state
// reconstructible from base + remaining deltas.
func TestPruneRespectsPinnedSnapshot(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 300)
	defer tbl.Free()
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	const row = 7
	if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(111)); err != nil {
		t.Fatal(err)
	}

	pinTS, release := tbl.txm.PinSnapshot()
	released := false
	defer func() {
		if !released {
			release()
		}
	}()

	// A commit the pin must never see.
	if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(222)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}

	// The state visible at the pinned timestamp is still 111: either the
	// delta survived pruning, or Merge folded it into the base — never
	// the newer 222.
	got := func() float64 {
		if rec, deleted, _, ok := tbl.deltas.VersionAt(row, pinTS); ok {
			if deleted {
				t.Fatal("pinned version reads as deleted")
			}
			return rec[workload.ItemPriceCol].F
		}
		v, err := tbl.baseValue(row, workload.ItemPriceCol)
		if err != nil {
			t.Fatal(err)
		}
		return v.F
	}
	if v := got(); v != 111 {
		t.Fatalf("visible at pinned ts: %v, want 111", v)
	}
	// The latest snapshot reads the newer commit.
	rec, err := tbl.Get(row)
	if err != nil {
		t.Fatal(err)
	}
	if rec[workload.ItemPriceCol].F != 222 {
		t.Fatalf("latest read %v, want 222", rec[workload.ItemPriceCol].F)
	}

	// Once the pin drops, Merge may fold everything; latest stays 222.
	release()
	released = true
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	rec, err = tbl.Get(row)
	if err != nil {
		t.Fatal(err)
	}
	if rec[workload.ItemPriceCol].F != 222 {
		t.Fatalf("after release, latest read %v, want 222", rec[workload.ItemPriceCol].F)
	}
}

// TestCheckpointUnderConcurrentWrites cuts checkpoint images while
// writers hammer the table, restoring each image into a fresh engine
// and checking it is internally consistent — the pinned snapshot must
// make every image a valid database state, whatever the interleaving.
func TestCheckpointUnderConcurrentWrites(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 64, HotChunks: 1, Compress: true}, 200)
	defer tbl.Free()
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(200); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tbl.Insert(workload.Item(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tbl.Update(i%200, workload.ItemPriceCol, schema.FloatValue(float64(i))); err != nil {
				t.Error(err)
				return
			}
			if i%37 == 0 {
				if err := tbl.Merge(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for round := 0; round < 5; round++ {
		enc := &wal.Encoder{}
		_, ckptRows, err := tbl.CheckpointTo(enc)
		if err != nil {
			t.Fatal(err)
		}
		if ckptRows < 200 {
			t.Fatalf("round %d: ckptRows=%d, want >= 200", round, ckptRows)
		}
		re := New(engine.NewEnv(), Options{ChunkRows: 64, HotChunks: 1, Compress: true})
		rt, err := re.RestoreTable("item", workload.ItemSchema(), wal.NewDecoder(enc.Bytes()))
		if err != nil {
			t.Fatalf("round %d: restore: %v", round, err)
		}
		if rt.Rows() != ckptRows {
			t.Fatalf("round %d: restored %d rows, want %d", round, rt.Rows(), ckptRows)
		}
		for _, row := range []uint64{0, 63, 64, ckptRows - 1} {
			rec, err := rt.Get(row)
			if err != nil {
				t.Fatalf("round %d: Get(%d): %v", round, row, err)
			}
			if rec[0].I != int64(row) {
				t.Fatalf("round %d: row %d has pk %d", round, row, rec[0].I)
			}
			if pkRow, ok := rt.LookupPK(int64(row)); !ok || pkRow != row {
				t.Fatalf("round %d: pk %d resolves to (%d,%v)", round, row, pkRow, ok)
			}
		}
		rt.Free()
	}
	close(stop)
	wg.Wait()
}
