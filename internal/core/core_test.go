package core

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/index"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// newTable creates a reference-engine item table with small chunks so
// freezing kicks in quickly.
func newTable(t *testing.T, opts Options, n uint64) (*Engine, *Table) {
	t.Helper()
	env := engine.NewEnv()
	if opts.ChunkRows == 0 {
		opts.ChunkRows = 128
	}
	e := New(env, opts)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return e, ct
}

func TestInsertGetRoundTrip(t *testing.T) {
	_, tbl := newTable(t, Options{}, 500)
	defer tbl.Free()
	for _, row := range []uint64{0, 127, 128, 499} {
		rec, err := tbl.Get(row)
		if err != nil {
			t.Fatalf("Get(%d): %v", row, err)
		}
		if !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) = %v", row, rec)
		}
	}
	if _, err := tbl.Get(500); !errors.Is(err, engine.ErrNoSuchRow) {
		t.Fatalf("Get(500) err = %v", err)
	}
}

func TestFreezingMovesChunksColdDelegation(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 2}, 1000)
	defer tbl.Free()
	if tbl.Freezes() == 0 {
		t.Fatal("no chunk froze")
	}
	if got := tbl.HotChunks(); got > 2 {
		t.Fatalf("hot chunks = %d, budget 2", got)
	}
	// Delegation: every chunk's data exists in exactly one region — the
	// layouts never both cover a row.
	snap := tbl.Snapshot()
	oltpRows := map[uint64]bool{}
	for _, f := range snap.Layouts[0].Fragments {
		for r := f.Rows.Begin; r < f.Rows.End; r++ {
			oltpRows[r] = true
		}
	}
	for _, f := range snap.Layouts[1].Fragments {
		for r := f.Rows.Begin; r < f.Rows.End; r++ {
			if oltpRows[r] {
				t.Fatalf("row %d present in both regions (replication, not delegation)", r)
			}
		}
	}
	// Reads stitch both regions.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(1000)
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestUpdateThroughMVCCVisibleEverywhere(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 600)
	defer tbl.Free()
	// Row 5 is in a frozen chunk; row 599 in the hot tail.
	for _, row := range []uint64{5, 599} {
		if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(777)); err != nil {
			t.Fatalf("Update(%d): %v", row, err)
		}
		rec, err := tbl.Get(row)
		if err != nil || rec[workload.ItemPriceCol].F != 777 {
			t.Fatalf("Get(%d) = %v, %v", row, rec, err)
		}
	}
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(600) - workload.ItemPrice(5) - workload.ItemPrice(599) + 2*777
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if tbl.PendingVersions() == 0 {
		t.Fatal("updates did not create versions")
	}
}

// TestAnalyticsDetachedFromTransactions reproduces challenge (b.iii): a
// long-running analytic reader pinned before a burst of transactional
// updates computes its aggregate as if the updates never happened.
func TestAnalyticsDetachedFromTransactions(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 400)
	defer tbl.Free()

	// Pin an analytic transaction BEFORE the update burst.
	reader := tbl.Begin()
	defer reader.Abort()
	before, err := reader.Read(42)
	if err != nil {
		t.Fatal(err)
	}

	for i := uint64(0); i < 100; i++ {
		if err := tbl.Update(i, workload.ItemPriceCol, schema.FloatValue(9999)); err != nil {
			t.Fatal(err)
		}
	}

	after, err := reader.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after) {
		t.Fatalf("snapshot moved under analytic reader: %v → %v", before, after)
	}
	// A fresh reader sees the updates.
	rec, err := tbl.Get(42)
	if err != nil || rec[workload.ItemPriceCol].F != 9999 {
		t.Fatalf("current read = %v, %v", rec, err)
	}
}

func TestTxnConflict(t *testing.T) {
	_, tbl := newTable(t, Options{}, 100)
	defer tbl.Free()
	a := tbl.Begin()
	b := tbl.Begin()
	if err := a.Update(1, workload.ItemPriceCol, schema.FloatValue(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(1, workload.ItemPriceCol, schema.FloatValue(2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, tx.ErrConflict) {
		t.Fatalf("second committer err = %v", err)
	}
	rec, _ := tbl.Get(1)
	if rec[workload.ItemPriceCol].F != 1 {
		t.Fatalf("winner lost: %v", rec)
	}
}

func TestMergeFoldsVersions(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 300)
	defer tbl.Free()
	for i := uint64(0); i < 50; i++ {
		if err := tbl.Update(i, workload.ItemPriceCol, schema.FloatValue(5)); err != nil {
			t.Fatal(err)
		}
	}
	sumBefore, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	sumAfter, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumBefore-sumAfter) > 1e-6 {
		t.Fatalf("Merge changed the answer: %v → %v", sumBefore, sumAfter)
	}
	rec, err := tbl.Get(10)
	if err != nil || rec[workload.ItemPriceCol].F != 5 {
		t.Fatalf("post-merge Get = %v, %v", rec, err)
	}
}

func TestAdaptRegroupsColdChunks(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1, Affinity: 0.5}, 600)
	defer tbl.Free()
	// Record-centric co-access on columns 0-2 should fuse them in cold
	// chunks after adaptation.
	for i := 0; i < 200; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
	}
	changed, err := tbl.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("Adapt did not regroup")
	}
	// Data intact after regrouping.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(600)) > 1e-6 {
		t.Fatalf("sum after regroup = %v", sum)
	}
	rec, err := tbl.Get(3)
	if err != nil || !rec.Equal(workload.Item(3)) {
		t.Fatalf("Get after regroup = %v, %v", rec, err)
	}
	// A fused DSM fragment must exist in the cold region.
	fused := false
	for _, f := range tbl.Snapshot().Layouts[1].Fragments {
		if len(f.Cols) >= 2 && f.Lin == layout.DSM {
			fused = true
		}
	}
	if !fused {
		t.Fatal("no fused cold fragment after adapt")
	}
}

func TestDevicePlacementMovesColumns(t *testing.T) {
	// Chunks must be large enough that a per-chunk reduction kernel beats
	// the host stream — the advisor is cost-aware and declines otherwise.
	_, tbl := newTable(t, Options{ChunkRows: 16384, HotChunks: 1, DevicePlacement: true}, 50_000)
	defer tbl.Free()
	// Scan-dominate the price column.
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	changed, err := tbl.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if !changed || len(tbl.DeviceColumns()) != 1 || tbl.DeviceColumns()[0] != workload.ItemPriceCol {
		t.Fatalf("placement: changed=%v cols=%v", changed, tbl.DeviceColumns())
	}
	// Mixed location in the snapshot (requirement 3).
	snap := tbl.Snapshot()
	spaces := map[mem.Space]bool{}
	for _, l := range snap.Layouts {
		for _, f := range l.Fragments {
			spaces[f.Space] = true
		}
	}
	if !spaces[mem.Host] || !spaces[mem.Device] {
		t.Fatalf("spaces = %v, want host+device", spaces)
	}
	// Answers unchanged; device kernels do the scanning.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(50_000)) > 1e-4 {
		t.Fatalf("device sum = %v", sum)
	}
	// Delegation, not replication: no host copy of a placed fragment.
	// Eviction brings it back.
	if err := tbl.EvictColumn(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	sum2, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum2-sum) > 1e-6 {
		t.Fatalf("post-evict sum = %v, %v", sum2, err)
	}
}

func TestPlacementCoolsOff(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 16384, HotChunks: 1, DevicePlacement: true}, 50_000)
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.DeviceColumns()) != 1 {
		t.Fatal("column not placed")
	}
	// Shift to record-centric: the column must come home.
	for i := 0; i < 500; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: layout.AllCols(tbl.Schema())})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.DeviceColumns()) != 0 {
		t.Fatalf("column still placed: %v", tbl.DeviceColumns())
	}
}

// TestReferenceDesignChecklist verifies the six Section IV-C requirements
// against the engine's derived classification — the constructive check
// that this design would pass where the paper's Table 1 says every
// surveyed engine fails.
func TestReferenceDesignChecklist(t *testing.T) {
	env := engine.NewEnv()
	e := New(env, Options{ChunkRows: 128, HotChunks: 1, DevicePlacement: true})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()
	if err := workload.Generate(600, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Mixed HTAP history: fuse 0-2, scan price.
	for i := 0; i < 100; i++ {
		ct.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
		ct.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	if _, err := ct.Adapt(); err != nil {
		t.Fatal(err)
	}
	// Manual placement (not cost-gated) realizes the mixed data location
	// at this small demo scale.
	if err := ct.PlaceColumn(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}

	c, violations, err := engine.Audit(e, ct)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("violation: %v", v)
	}

	// (1) at least constrained strong flexible layout support.
	if !c.Flexibility.Strong() {
		t.Errorf("req 1: flexibility = %v", c.Flexibility)
	}
	// (2) layout responsive to changes in workloads.
	if c.Adaptability != taxonomy.Responsive {
		t.Errorf("req 2: adaptability = %v", c.Adaptability)
	}
	// (3) mixed data location and distributed data locality.
	if c.Working != taxonomy.LocMixed || c.Locality != taxonomy.Distributed {
		t.Errorf("req 3: location = %v/%v", c.Working, c.Locality)
	}
	// (4) fragmentation linearization that covers NSM and DSM.
	if c.Linearization != taxonomy.FatVariable {
		t.Errorf("req 4: linearization = %v", c.Linearization)
	}
	// (5) built-in multi layout handling.
	if c.Handling != taxonomy.MultiLayoutBuiltIn {
		t.Errorf("req 5: handling = %v", c.Handling)
	}
	// (6) fragment scheme supports delegation.
	if c.Scheme != taxonomy.SchemeDelegation {
		t.Errorf("req 6: scheme = %v", c.Scheme)
	}
	// Workload and processor targets.
	if c.Workloads != taxonomy.HTAP || c.Processors != taxonomy.CPUAndGPU {
		t.Errorf("targets = %v/%v", c.Workloads, c.Processors)
	}
}

// TestConformanceCore runs the same behaviour suite the ten surveyed
// engines pass.
func TestConformanceCore(t *testing.T) {
	const n = 700
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 2, DevicePlacement: true}, n)
	defer tbl.Free()

	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(n)) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
	if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(1000)); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	positions := workload.PositionList(r, 150, n)
	recs, err := tbl.Materialize(positions)
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range positions {
		want := workload.Item(pos)
		if pos == 3 {
			want[workload.ItemPriceCol] = schema.FloatValue(1000)
		}
		if !recs[i].Equal(want) {
			t.Fatalf("materialized[%d] = %v, want %v", i, recs[i], want)
		}
	}
	if _, err := tbl.Materialize([]uint64{n}); err == nil {
		t.Fatal("out-of-range materialize accepted")
	}
	if _, err := tbl.Insert(schema.Record{schema.IntValue(1)}); err == nil {
		t.Fatal("short record accepted")
	}
	if err := tbl.Update(0, 99, schema.IntValue(1)); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := tbl.SumFloat64(0); err == nil {
		t.Fatal("sum over int column accepted")
	}
}

// Property: for any interleaving of inserts, updates and freezes, the sum
// equals a model map's sum and every record reads back correctly.
func TestQuickHTAPEquivalence(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		env := engine.NewEnv()
		e := New(env, Options{ChunkRows: 32, HotChunks: 1, DevicePlacement: seed%2 == 0})
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			return false
		}
		ct := tbl.(*Table)
		defer ct.Free()

		model := map[uint64]float64{}
		var rows uint64
		ops := int(opsRaw)%300 + 50
		for i := 0; i < ops; i++ {
			switch {
			case rows == 0 || r.Float64() < 0.5:
				rec := workload.Item(rows)
				if _, err := ct.Insert(rec); err != nil {
					return false
				}
				model[rows] = workload.ItemPrice(rows)
				rows++
			case r.Float64() < 0.8:
				row := uint64(r.Int63n(int64(rows)))
				val := math.Floor(r.Float64() * 100)
				if err := ct.Update(row, workload.ItemPriceCol, schema.FloatValue(val)); err != nil {
					return false
				}
				model[row] = val
			default:
				if _, err := ct.Adapt(); err != nil {
					return false
				}
				if r.Float64() < 0.5 {
					if err := ct.Merge(); err != nil {
						return false
					}
				}
			}
		}
		var want float64
		for _, v := range model {
			want += v
		}
		got, err := ct.SumFloat64(workload.ItemPriceCol)
		if err != nil || math.Abs(got-want) > 1e-6 {
			return false
		}
		probe := uint64(r.Int63n(int64(rows)))
		rec, err := ct.Get(probe)
		return err == nil && rec[workload.ItemPriceCol].F == model[probe]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryKeyQ1(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 500)
	defer tbl.Free()
	// Q1: SELECT * FROM item WHERE pk = c — resolved via the hash index.
	rec, err := tbl.GetByPK(321)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(workload.Item(321)) {
		t.Fatalf("GetByPK = %v", rec)
	}
	if _, err := tbl.GetByPK(99999); !errors.Is(err, engine.ErrNoSuchRow) {
		t.Fatalf("missing pk err = %v", err)
	}
	row, ok := tbl.LookupPK(42)
	if !ok || row != 42 {
		t.Fatalf("LookupPK = %d, %v", row, ok)
	}
	// Q1 sees committed updates.
	if err := tbl.Update(321, workload.ItemPriceCol, schema.FloatValue(7)); err != nil {
		t.Fatal(err)
	}
	rec, err = tbl.GetByPK(321)
	if err != nil || rec[workload.ItemPriceCol].F != 7 {
		t.Fatalf("post-update GetByPK = %v, %v", rec, err)
	}
}

func TestPrimaryKeyImmutableAndUnique(t *testing.T) {
	_, tbl := newTable(t, Options{}, 100)
	defer tbl.Free()
	if err := tbl.Update(5, 0, schema.IntValue(9)); !errors.Is(err, ErrImmutablePK) {
		t.Fatalf("pk update err = %v", err)
	}
	x := tbl.Begin()
	defer x.Abort()
	if err := x.Update(5, 0, schema.IntValue(9)); !errors.Is(err, ErrImmutablePK) {
		t.Fatalf("txn pk update err = %v", err)
	}
	if _, err := tbl.Insert(workload.Item(5)); !errors.Is(err, index.ErrDuplicate) {
		t.Fatalf("duplicate pk err = %v", err)
	}
}

func TestTxnReadByPKSnapshot(t *testing.T) {
	_, tbl := newTable(t, Options{}, 100)
	defer tbl.Free()
	x := tbl.Begin()
	defer x.Abort()
	before, err := x.ReadByPK(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(10, workload.ItemPriceCol, schema.FloatValue(1)); err != nil {
		t.Fatal(err)
	}
	after, err := x.ReadByPK(10)
	if err != nil || !before.Equal(after) {
		t.Fatalf("snapshot moved under pk read: %v → %v (%v)", before, after, err)
	}
}

func TestNoPKIndexForNonIntKey(t *testing.T) {
	env := engine.NewEnv()
	e := New(env, Options{})
	s := schema.MustNew(schema.CharAttr("name", 8), schema.Float64Attr("v"))
	tbl, err := e.Create("t", s)
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	defer ct.Free()
	if ct.hasPKIndex() {
		t.Fatal("char key indexed")
	}
	if _, err := ct.GetByPK(1); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := ct.LookupPK(1); ok {
		t.Fatal("LookupPK on unindexed table")
	}
	// Updates to attribute 0 are allowed without an index.
	if _, err := ct.Insert(schema.Record{schema.CharValue("a"), schema.FloatValue(1)}); err != nil {
		t.Fatal(err)
	}
	if err := ct.Update(0, 0, schema.CharValue("b")); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSumFloat64(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1}, 700)
	defer tbl.Free()
	// GROUP BY i_im_id%... : item im_id = i%100000 so distinct at 700
	// rows; group by warehouse-ish col 1 (int32, i%100000 → distinct).
	// Use col 1 (i_im_id, int32): values are i%100000, distinct per row
	// at 700 rows — instead group by a small-cardinality derived table.
	groups, err := tbl.GroupSumFloat64(1, workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 700 {
		t.Fatalf("groups = %d, want 700 distinct", len(groups))
	}
	var total float64
	var count int64
	for _, g := range groups {
		total += g.Sum
		count += g.Count
	}
	if count != 700 || math.Abs(total-workload.ExpectedItemPriceSum(700)) > 1e-6 {
		t.Fatalf("totals = %d, %v", count, total)
	}

	// Updates move rows between groups under MVCC patching: change a
	// row's price.
	if err := tbl.Update(5, workload.ItemPriceCol, schema.FloatValue(500)); err != nil {
		t.Fatal(err)
	}
	groups, err = tbl.GroupSumFloat64(1, workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, g := range groups {
		total += g.Sum
	}
	want := workload.ExpectedItemPriceSum(700) - workload.ItemPrice(5) + 500
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("post-update total = %v, want %v", total, want)
	}

	// A key update moves the row into a (possibly new) group.
	if err := tbl.Update(5, 1, schema.Int32Value(999_999)); err != nil {
		t.Fatal(err)
	}
	groups, err = tbl.GroupSumFloat64(1, workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range groups {
		if g.Key == 999_999 {
			found = true
			if g.Count != 1 || math.Abs(g.Sum-500) > 1e-6 {
				t.Fatalf("moved group = %+v", g)
			}
		}
	}
	if !found {
		t.Fatal("key update did not create the new group")
	}

	// Validation.
	if _, err := tbl.GroupSumFloat64(2, workload.ItemPriceCol); err == nil {
		t.Fatal("char key accepted")
	}
	if _, err := tbl.GroupSumFloat64(1, 0); err == nil {
		t.Fatal("int aggregate accepted")
	}
	if _, err := tbl.GroupSumFloat64(99, 4); err == nil {
		t.Fatal("bad col accepted")
	}
}

// TestColdCompressedScan covers Options.Compress: freezing seals
// side-car compressed images on cold singleton numeric columns, queries
// over cold chunks execute in the compressed domain with unchanged
// answers, MVCC updates overlay correctly (the raw fragments stay
// authoritative), and a version-store merge re-seals the images it made
// stale.
func TestColdCompressedScan(t *testing.T) {
	_, tbl := newTable(t, Options{ChunkRows: 128, HotChunks: 1, Compress: true}, 600)
	defer tbl.Free()
	sealedImages := func() int {
		n := 0
		for _, c := range tbl.chunks {
			if c.state == cold && len(c.comp) > workload.ItemPriceCol && c.comp[workload.ItemPriceCol] != nil {
				n++
			}
		}
		return n
	}
	if sealedImages() == 0 {
		t.Fatal("freezing sealed no compressed price images")
	}
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if want := workload.ExpectedItemPriceSum(600); math.Abs(sum-want) > 1e-6 {
		t.Fatalf("compressed-domain sum = %v, want %v", sum, want)
	}
	p := exec.Between(0.0, 50.0)
	var wantSum float64
	var wantN int64
	for i := uint64(0); i < 600; i++ {
		if v := workload.ItemPrice(i); p.Match(v) {
			wantSum += v
			wantN++
		}
	}
	got, cnt, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != wantN || math.Abs(got-wantSum) > 1e-6*math.Max(1, wantSum) {
		t.Fatalf("compressed predicate scan = (%v, %d), want (%v, %d)", got, cnt, wantSum, wantN)
	}
	// An MVCC update on a frozen row overlays the compressed base scan.
	if err := tbl.Update(5, workload.ItemPriceCol, schema.FloatValue(777)); err != nil {
		t.Fatal(err)
	}
	sum, err = tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(600) - workload.ItemPrice(5) + 777
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("post-update sum = %v, want %v", sum, want)
	}
	// Merge folds the version into the base fragment and re-seals the
	// touched chunk's images: the fresh image must carry the new value.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if sealedImages() == 0 {
		t.Fatal("merge dropped all compressed images without re-sealing")
	}
	for _, c := range tbl.chunks {
		if c.state != cold || !c.rows.Contains(5) {
			continue
		}
		cc := c.comp[workload.ItemPriceCol]
		if cc == nil {
			t.Fatal("touched chunk lost its compressed image after merge")
		}
		buf := make([]byte, cc.Len()*8)
		if _, err := cc.DecompressInto(buf); err != nil {
			t.Fatal(err)
		}
		local := int(5 - c.rows.Begin)
		if v := math.Float64frombits(binary.LittleEndian.Uint64(buf[local*8:])); v != 777 {
			t.Fatalf("re-sealed image holds %v at row 5, want 777", v)
		}
	}
	sum, err = tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("post-merge sum = %v, want %v", sum, want)
	}
}
