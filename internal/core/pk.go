package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/index"
	"hybridstore/internal/layout"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/tx"
	"hybridstore/internal/workload"
)

// ErrImmutablePK is returned by updates targeting the indexed primary-key
// attribute: the reference engine keeps primary keys immutable so the
// hash index stays consistent with MVCC without index versioning.
var ErrImmutablePK = errors.New("core: primary-key attribute is immutable")

// hasPKIndex reports whether the table maintains a primary-key index
// (attribute 0 must be an int64 for the hash index to apply).
func (t *Table) hasPKIndex() bool { return t.pk != nil }

// initPK is called from Create when the schema supports indexing.
func (t *Table) initPK() {
	if t.s.Attr(0).Kind == schema.Int64 {
		t.pk = index.NewHash(1024)
	}
}

// indexInsert registers a freshly inserted record.
func (t *Table) indexInsert(rec schema.Record, row uint64) error {
	if t.pk == nil {
		return nil
	}
	if err := t.pk.Put(rec[0].I, row); err != nil {
		return fmt.Errorf("core: indexing pk %d: %w", rec[0].I, err)
	}
	return nil
}

// guardPKUpdate rejects writes to the indexed key attribute.
func (t *Table) guardPKUpdate(col int) error {
	if t.pk != nil && col == 0 {
		return fmt.Errorf("%w: attribute %s", ErrImmutablePK, t.s.Attr(0).Name)
	}
	return nil
}

// GetByPK answers the paper's query Q1 — SELECT * FROM R WHERE pk = c —
// through the hash index: exactly one record is identified without
// scanning the relation, then materialized under a fresh snapshot.
func (t *Table) GetByPK(pk int64) (schema.Record, error) {
	if t.pk == nil {
		return nil, fmt.Errorf("%w: relation has no int64 primary key", engine.ErrUnsupported)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, err := t.pk.Get(pk)
	if err != nil {
		return nil, fmt.Errorf("%w: pk %d", engine.ErrNoSuchRow, pk)
	}
	t.mon.Observe(workload.Op{Kind: workload.PointRead, Cols: layout.AllCols(t.s)})
	// The pk is resolved; from here the read is a point read on row, so
	// it shares the row's result-cache entry with positional Gets.
	cache := t.eng.rescache
	var key rescache.Key
	var st rescache.Stamp
	cacheable := false
	if cache != nil {
		if t.deltas.LatestTS(row) == 0 {
			if c, err := t.chunkFor(row); err == nil {
				key, st = t.rowCacheKey(row), t.chunkStampLocked(c)
				cacheable = true
				if v, ok := cache.Lookup(key, st); ok {
					return v.Rec, nil
				}
			}
		}
		if !cacheable {
			cache.Bypass()
		}
	}
	reader := t.txm.Begin()
	defer reader.Abort()
	rec, err := t.recordAt(reader, row)
	if err != nil {
		return nil, err
	}
	if cacheable && t.deltas.LatestTS(row) == 0 {
		cache.Put(key, st, rescache.Value{Rec: rec})
	}
	return rec, nil
}

// LookupPK resolves a key to its row position without materializing.
func (t *Table) LookupPK(pk int64) (uint64, bool) {
	if t.pk == nil {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, err := t.pk.Get(pk)
	return row, err == nil
}

// readByPK is the Txn-scoped variant of GetByPK.
func (t *Table) readByPK(x *tx.Tx, pk int64) (schema.Record, error) {
	if t.pk == nil {
		return nil, fmt.Errorf("%w: relation has no int64 primary key", engine.ErrUnsupported)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, err := t.pk.Get(pk)
	if err != nil {
		return nil, fmt.Errorf("%w: pk %d", engine.ErrNoSuchRow, pk)
	}
	return t.recordAt(x, row)
}

// ReadByPK is Txn's Q1: a snapshot read identified by primary key.
func (x *Txn) ReadByPK(pk int64) (schema.Record, error) {
	return x.t.readByPK(x.x, pk)
}
