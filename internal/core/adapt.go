package core

import (
	"errors"
	"fmt"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// Adaptation observability: counters for every structural decision the
// advisor takes, span families timing the coarse reorganization passes
// (these run under the table's exclusive lock, so their duration is the
// write-stall the adaptivity costs — the trade-off DESIGN.md Section 6
// quantifies), and an event per adaptation recording the monitor
// snapshot that triggered it.
var (
	mAdaptRuns     = obs.NewCounter("core.adapt_runs")
	mAdaptChanged  = obs.NewCounter("core.adapt_changed")
	mChunkRegroups = obs.NewCounter("core.chunk_regroups")
	mFreezes       = obs.NewCounter("core.freezes")
	mPlacements    = obs.NewCounter("core.column_placements")
	mEvictions     = obs.NewCounter("core.column_evictions")

	sfAdapt  = obs.NewSpanFamily("core.adapt")
	sfFreeze = obs.NewSpanFamily("core.freeze")
	sfMerge  = obs.NewSpanFamily("core.merge")
)

// Observe feeds an external workload observation into the advisor (the
// table also observes its own operations; this entry point lets harnesses
// replay traces).
func (t *Table) Observe(op workload.Op) { t.mon.Observe(op) }

// Adapt runs the layout advisor: cold chunks whose column grouping
// disagrees with the current advice are re-fragmented, and (when device
// placement is enabled) scan-dominated float64 columns move their cold
// thin fragments to the GPU — or back to the host when scans stop
// dominating. Returns whether anything changed.
func (t *Table) Adapt() (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mon.Observations() == 0 {
		return false, nil
	}
	mAdaptRuns.Inc()
	sp := sfAdapt.Start()
	// Capture the snapshot driving this decision before Reset discards it;
	// the span detail preserves what the advisor actually saw.
	nObs := t.mon.Observations()
	stats := t.mon.Snapshot()
	changed := false
	advice := t.mon.SuggestGroups(t.eng.opts.Affinity)
	for _, c := range t.chunks {
		if c.state != cold || groupingEqual(c.groups, advice) {
			continue
		}
		if err := t.regroupChunk(c, advice); err != nil {
			sp.EndWith(fmt.Sprintf("error: %v", err))
			return changed, err
		}
		mChunkRegroups.Inc()
		changed = true
	}
	if t.eng.opts.DevicePlacement {
		moved, err := t.adaptPlacement()
		if err != nil {
			sp.EndWith(fmt.Sprintf("error: %v", err))
			return changed, err
		}
		changed = changed || moved
	}
	if changed {
		t.adapts++
		mAdaptChanged.Inc()
	}
	// Either way the advice was consumed: start a fresh observation epoch
	// so the next adaptation reflects the workload from now on (and a
	// shift like OLTP→OLAP is not drowned out by history).
	t.mon.Reset()
	detail := fmt.Sprintf("obs=%d attr_ratio=%.2f groups=%v changed=%t",
		nObs, stats.AttrCentricRatio, advice, changed)
	sp.EndWith(detail)
	if changed {
		obs.RecordEvent("core.adapt", detail)
	}
	return changed, nil
}

// regroupChunk rewrites a cold chunk under a new column grouping.
func (t *Table) regroupChunk(c *chunk, groups [][]int) error {
	frags, err := t.buildColdFragments(c.rows, groups)
	if err != nil {
		return err
	}
	n := c.filled()
	for i := 0; i < n; i++ {
		rec := make(schema.Record, t.s.Arity())
		for gi, f := range c.frags {
			for _, col := range c.groups[gi] {
				v, err := f.Get(i, col)
				if err != nil {
					freeAll(frags)
					return err
				}
				rec[col] = v
			}
		}
		for gi, f := range frags {
			vals := make([]schema.Value, 0, len(groups[gi]))
			for _, col := range groups[gi] {
				vals = append(vals, rec[col])
			}
			if err := f.AppendTuplet(vals); err != nil {
				freeAll(frags)
				return err
			}
		}
	}
	// Regrouped fragments hold the same settled rows; re-seal their zones.
	for _, f := range frags {
		f.SealStats()
	}
	for _, f := range frags {
		if err := t.olap.Add(f); err != nil {
			freeAll(frags)
			return err
		}
	}
	for _, f := range c.frags {
		t.olap.Remove(f)
		t.invalidateFrag(f)
		f.Free()
	}
	c.groups = groups
	c.frags = frags
	t.sealChunkCompression(c)
	// Re-establish device residency for placed columns.
	for col := range t.deviceCols {
		if t.deviceCols[col] {
			if err := t.placeChunkColumn(c, col); err != nil {
				t.deviceCols[col] = false
			}
		}
	}
	return nil
}

// adaptPlacement moves scan-dominated float64 columns' cold thin
// fragments onto the device and evicts columns that cooled off. A column
// only moves when the calibrated model says a device scan actually beats
// the host scan — with small chunks the per-chunk kernel launch overhead
// can dominate, and then the advisor declines (the GPU-under-utilization
// effect the paper discusses for small work units).
func (t *Table) adaptPlacement() (bool, error) {
	stats := t.mon.Snapshot()
	changed := false
	for col := 0; col < t.s.Arity(); col++ {
		if t.s.Attr(col).Kind != schema.Float64 {
			continue
		}
		dominated := stats.Scan[col] > 2*stats.Point[col] && stats.Scan[col] > 0 &&
			t.devicePaysOff(col)
		switch {
		case dominated && !t.deviceCols[col]:
			if err := t.placeColumnLocked(col); err != nil {
				if errors.Is(err, mem.ErrOutOfMemory) {
					continue // all-or-nothing fallback: stay on host
				}
				return changed, err
			}
			changed = true
		case !dominated && t.deviceCols[col]:
			if err := t.evictColumnLocked(col); err != nil {
				return changed, err
			}
			changed = true
		}
	}
	return changed, nil
}

// devicePaysOff prices one steady-state scan of col on each platform: the
// device executes one reduction kernel per cold chunk holding a thin
// fragment of the column, the host streams the same bytes through the
// bulk operator.
func (t *Table) devicePaysOff(col int) bool {
	size := t.s.Attr(col).Size
	var deviceNs, hostRows float64
	chunks := 0
	for _, c := range t.chunks {
		if c.state != cold {
			continue
		}
		if _, f := t.thinFragment(c, col); f == nil {
			continue
		}
		n := int64(c.filled())
		deviceNs += t.env.GPU.Profile().ReduceKernelNs(n, size, size, 1024, 512)
		hostRows += float64(n)
		chunks++
	}
	if chunks == 0 {
		return false
	}
	hostNs := t.env.HostProfile.ScanSumNs(int64(hostRows), size, size, 1)
	return deviceNs < hostNs
}

// PlaceColumn MOVES column col's cold thin fragments into device memory
// (delegation, not replication: the host copy is freed). Columns stored
// inside fused fat groups stay on the host — only thin fragments migrate.
// On device exhaustion the column reverts to host residency entirely
// (all-or-nothing) and mem.ErrOutOfMemory is returned.
func (t *Table) PlaceColumn(col int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.placeColumnLocked(col)
}

// placeColumnLocked is PlaceColumn under the held exclusive lock (the
// adaptation path calls it directly).
func (t *Table) placeColumnLocked(col int) error {
	if col < 0 || col >= t.s.Arity() {
		return fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	var moved []*chunk
	for _, c := range t.chunks {
		if c.state != cold {
			continue
		}
		if err := t.placeChunkColumn(c, col); err != nil {
			// Roll back: the column is host-resident or device-resident as
			// a whole, never split.
			for _, mc := range moved {
				if err := t.unplaceChunkColumn(mc, col); err != nil {
					return err
				}
			}
			return err
		}
		moved = append(moved, c)
	}
	t.deviceCols[col] = true
	mPlacements.Inc()
	return nil
}

// EvictColumn moves column col's device-resident fragments back to host
// memory.
func (t *Table) EvictColumn(col int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictColumnLocked(col)
}

// evictColumnLocked is EvictColumn under the held exclusive lock.
func (t *Table) evictColumnLocked(col int) error {
	for _, c := range t.chunks {
		if c.state != cold {
			continue
		}
		if err := t.unplaceChunkColumn(c, col); err != nil {
			return err
		}
	}
	t.deviceCols[col] = false
	mEvictions.Inc()
	return nil
}

// placeChunkColumn moves one chunk's thin fragment of col to the device.
func (t *Table) placeChunkColumn(c *chunk, col int) error {
	gi, f := t.thinFragment(c, col)
	if f == nil || f.Space() == mem.Device {
		return nil
	}
	df, err := f.CloneTo(t.env.GPU.Allocator())
	if err != nil {
		return fmt.Errorf("core: placing column %d: %w", col, err)
	}
	// CloneTo moves the block directly, bypassing CopyToDevice; charge and
	// count the bus traffic through the device so placement shows up in
	// both the clock and the transfer counters.
	t.env.GPU.ChargeTransfer(int64(df.SizeBytes()), true)
	if err := t.olap.Replace(f, df); err != nil {
		df.Free()
		return err
	}
	t.invalidateFrag(f)
	f.Free()
	c.frags[gi] = df
	return nil
}

// unplaceChunkColumn moves one chunk's thin fragment of col back to host.
func (t *Table) unplaceChunkColumn(c *chunk, col int) error {
	gi, f := t.thinFragment(c, col)
	if f == nil || f.Space() == mem.Host {
		return nil
	}
	hf, err := f.CloneTo(t.env.Host)
	if err != nil {
		return fmt.Errorf("core: evicting column %d: %w", col, err)
	}
	t.env.GPU.ChargeTransfer(int64(hf.SizeBytes()), false)
	if err := t.olap.Replace(f, hf); err != nil {
		hf.Free()
		return err
	}
	t.invalidateFrag(f)
	f.Free()
	c.frags[gi] = hf
	return nil
}

// thinFragment returns the index and fragment of col when col is stored
// alone in chunk c (nil when absent or fused into a fat group).
func (t *Table) thinFragment(c *chunk, col int) (int, *layout.Fragment) {
	for gi, g := range c.groups {
		if len(g) == 1 && g[0] == col {
			return gi, c.frags[gi]
		}
	}
	return -1, nil
}

// groupingEqual compares two column groupings.
func groupingEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
