package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// encode builds a little-endian int64 column image.
func encodeInts(vals []int64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func decodeInts(data []byte, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

func TestRoundTripAllEncodings(t *testing.T) {
	vals := []int64{5, 5, 5, 7, 7, 5, 9, 9, 9, 9}
	data := encodeInts(vals)
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, data, len(vals), 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got := decodeInts(c.Decompress(), len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%v: element %d = %d, want %d", enc, i, got[i], vals[i])
			}
		}
		if c.Len() != len(vals) || c.ElementSize() != 8 {
			t.Fatalf("%v: metadata broken", enc)
		}
	}
}

func TestRandomAccess(t *testing.T) {
	vals := []int64{1, 1, 2, 3, 3, 3, 4}
	data := encodeInts(vals)
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, data, len(vals), 8)
		if err != nil {
			t.Fatal(err)
		}
		tmp := make([]byte, 8)
		for i, want := range vals {
			got, err := c.At(i, tmp)
			if err != nil {
				t.Fatalf("%v At(%d): %v", enc, i, err)
			}
			if int64(binary.LittleEndian.Uint64(got)) != want {
				t.Fatalf("%v At(%d) = %d, want %d", enc, i, binary.LittleEndian.Uint64(got), want)
			}
		}
		if _, err := c.At(len(vals), tmp); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("%v: out-of-range err = %v", enc, err)
		}
		if _, err := c.At(0, make([]byte, 2)); !errors.Is(err, ErrBadInput) {
			t.Fatalf("%v: short buffer err = %v", enc, err)
		}
	}
}

func TestCompressPicksGoodEncoding(t *testing.T) {
	// Constant column: RLE should crush it.
	constant := make([]int64, 10_000)
	for i := range constant {
		constant[i] = 42
	}
	c, err := Compress(encodeInts(constant), len(constant), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encoding() != RLE || c.Ratio() < 1000 {
		t.Fatalf("constant column: %v", c)
	}

	// Low-cardinality strings: dictionary.
	codes := []string{"GC", "BC"}
	data := make([]byte, 10_000*2)
	for i := 0; i < 10_000; i++ {
		copy(data[i*2:], codes[i%2])
	}
	c, err = Compress(data, 10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encoding() != Dict && c.Encoding() != RLE {
		t.Fatalf("low-cardinality column picked %v", c.Encoding())
	}
	if c.Ratio() < 1.9 {
		t.Fatalf("ratio = %v", c.Ratio())
	}

	// Narrow-range integers: FOR.
	narrow := make([]int64, 10_000)
	for i := range narrow {
		narrow[i] = 1_000_000 + int64(i%200)
	}
	c, err = Compress(encodeInts(narrow), len(narrow), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encoding() != FOR || c.Ratio() < 7 {
		t.Fatalf("narrow ints: %v", c)
	}

	// High-entropy data: raw fallback.
	r := rand.New(rand.NewSource(1))
	random := make([]int64, 1000)
	for i := range random {
		random[i] = r.Int63() - r.Int63()
	}
	c, err = Compress(encodeInts(random), len(random), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encoding() != Raw {
		t.Fatalf("random ints picked %v with ratio %v", c.Encoding(), c.Ratio())
	}
}

func TestDictRejectsHighCardinality(t *testing.T) {
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := CompressAs(Dict, encodeInts(vals), len(vals), 8); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("err = %v", err)
	}
}

func TestFORRejectsWideSpanAndNon8Byte(t *testing.T) {
	wide := []int64{0, math.MaxInt64}
	if _, err := CompressAs(FOR, encodeInts(wide), 2, 8); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("wide span err = %v", err)
	}
	if _, err := CompressAs(FOR, make([]byte, 8), 2, 4); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("4-byte err = %v", err)
	}
}

func TestFORWidths(t *testing.T) {
	cases := []struct {
		span  int64
		width int
	}{
		{200, 1}, {60_000, 2}, {4_000_000, 4},
	}
	for _, cse := range cases {
		vals := []int64{100, 100 + cse.span}
		c, err := CompressAs(FOR, encodeInts(vals), 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		if c.width != cse.width {
			t.Fatalf("span %d: width = %d, want %d", cse.span, c.width, cse.width)
		}
		got := decodeInts(c.Decompress(), 2)
		if got[0] != 100 || got[1] != 100+cse.span {
			t.Fatalf("span %d round trip = %v", cse.span, got)
		}
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Compress(make([]byte, 4), 2, 8); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short data err = %v", err)
	}
	if _, err := Compress(nil, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero size err = %v", err)
	}
	if _, err := CompressAs(Encoding(9), make([]byte, 8), 1, 8); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("unknown encoding err = %v", err)
	}
}

func TestEmptyColumn(t *testing.T) {
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, nil, 0, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if c.Len() != 0 || len(c.Decompress()) != 0 {
			t.Fatalf("%v: empty column broken", enc)
		}
		sum, err := c.SumInt64()
		if err != nil || sum != 0 {
			t.Fatalf("%v: empty sum = %d, %v", enc, sum, err)
		}
	}
}

func TestSumInt64FastPaths(t *testing.T) {
	vals := []int64{10, 10, 10, 25, 25, 7}
	var want int64
	for _, v := range vals {
		want += v
	}
	data := encodeInts(vals)
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, data, len(vals), 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.SumInt64()
		if err != nil || got != want {
			t.Fatalf("%v sum = %d, %v; want %d", enc, got, err, want)
		}
	}
}

func TestSumFloat64FastPaths(t *testing.T) {
	vals := []float64{1.5, 1.5, 2.25, 2.25, 2.25, 9}
	data := make([]byte, len(vals)*8)
	var want float64
	for i, v := range vals {
		binary.LittleEndian.PutUint64(data[i*8:], math.Float64bits(v))
		want += v
	}
	for _, enc := range []Encoding{Raw, RLE, Dict} {
		c, err := CompressAs(enc, data, len(vals), 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.SumFloat64()
		if err != nil || math.Abs(got-want) > 1e-9 {
			t.Fatalf("%v sum = %v, %v; want %v", enc, got, err, want)
		}
	}
	// Wrong width.
	c, _ := CompressAs(Raw, make([]byte, 4), 1, 4)
	if _, err := c.SumFloat64(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("4-byte float sum err = %v", err)
	}
	if _, err := c.SumInt64(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("4-byte int sum err = %v", err)
	}
}

func TestForEachStreamsInOrder(t *testing.T) {
	vals := []int64{3, 3, 1, 1, 1, 8}
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, encodeInts(vals), len(vals), 8)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		c.ForEach(func(idx int, el []byte) {
			if idx != i {
				t.Fatalf("%v: ForEach order broken at %d", enc, idx)
			}
			if int64(binary.LittleEndian.Uint64(el)) != vals[idx] {
				t.Fatalf("%v: ForEach value broken at %d", enc, idx)
			}
			i++
		})
		if i != len(vals) {
			t.Fatalf("%v: visited %d of %d", enc, i, len(vals))
		}
	}
}

func TestStringer(t *testing.T) {
	c, _ := Compress(encodeInts([]int64{1, 1, 1}), 3, 8)
	if c.String() == "" || Encoding(9).String() == "" {
		t.Fatal("String broken")
	}
}

// Property: for random columns, every encoding that accepts the input
// round-trips exactly, and Compress never loses against Raw.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, cardRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%500 + 1
		card := int(cardRaw)%20 + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(card)) * 3
		}
		data := encodeInts(vals)
		for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
			c, err := CompressAs(enc, data, n, 8)
			if errors.Is(err, ErrNotApplicable) {
				continue
			}
			if err != nil {
				return false
			}
			if !bytes.Equal(c.Decompress(), data[:n*8]) {
				return false
			}
			want, got := int64(0), int64(0)
			for _, v := range vals {
				want += v
			}
			if got, err = c.SumInt64(); err != nil || got != want {
				return false
			}
		}
		best, err := Compress(data, n, 8)
		return err == nil && best.CompressedBytes() <= n*8 && bytes.Equal(best.Decompress(), data[:n*8])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// testShapes builds one representative column image per encoding.
func testShapes() map[Encoding][]byte {
	runny := make([]int64, 300)
	for i := range runny {
		runny[i] = int64(i / 50)
	}
	lowCard := make([]int64, 300)
	for i := range lowCard {
		lowCard[i] = int64((i * 7) % 5)
	}
	narrow := make([]int64, 300)
	for i := range narrow {
		narrow[i] = 1_000_000 + int64(i%200)
	}
	distinct := make([]int64, 300)
	for i := range distinct {
		distinct[i] = int64(i)*1_000_003 + 17
	}
	return map[Encoding][]byte{
		RLE:  encodeInts(runny),
		Dict: encodeInts(lowCard),
		FOR:  encodeInts(narrow),
		Raw:  encodeInts(distinct),
	}
}

// TestCompressedCodecRoundTrip checks the wire frame: Marshal produces
// exactly MarshaledBytes, Decode reconstructs a column whose dense
// bytes are bit-identical, and truncated frames are rejected.
func TestCompressedCodecRoundTrip(t *testing.T) {
	for enc, img := range testShapes() {
		c, err := CompressAs(enc, img, len(img)/8, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		wire := c.Marshal()
		if len(wire) != c.MarshaledBytes() {
			t.Errorf("%v: Marshal length %d, MarshaledBytes %d", enc, len(wire), c.MarshaledBytes())
		}
		d, err := Decode(wire)
		if err != nil {
			t.Fatalf("%v: Decode: %v", enc, err)
		}
		if d.Encoding() != enc || d.Len() != c.Len() || d.ElementSize() != 8 {
			t.Fatalf("%v: decoded as %v len %d size %d", enc, d.Encoding(), d.Len(), d.ElementSize())
		}
		if !bytes.Equal(d.Decompress(), img) {
			t.Errorf("%v: round trip corrupted the payload", enc)
		}
		for _, cut := range []int{0, 4, codecHeader - 1, len(wire) - 1} {
			if _, err := Decode(wire[:cut]); err == nil {
				t.Errorf("%v: Decode accepted a frame truncated to %d bytes", enc, cut)
			}
		}
	}
}

// TestDecompressInto checks the bulk decoder against the element loop
// and its destination-size contract.
func TestDecompressInto(t *testing.T) {
	for enc, img := range testShapes() {
		c, err := CompressAs(enc, img, len(img)/8, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		dst := make([]byte, len(img))
		out, err := c.DecompressInto(dst)
		if err != nil {
			t.Fatalf("%v: DecompressInto: %v", enc, err)
		}
		if !bytes.Equal(out, img) {
			t.Errorf("%v: bulk decode differs from the source image", enc)
		}
		// Element loop agreement.
		el := make([]byte, 8)
		for i := 0; i < c.Len(); i++ {
			el, err = c.At(i, el)
			if err != nil {
				t.Fatalf("%v: At(%d): %v", enc, i, err)
			}
			if !bytes.Equal(el, img[i*8:i*8+8]) {
				t.Fatalf("%v: At(%d) disagrees with the image", enc, i)
			}
		}
		if _, err := c.DecompressInto(dst[:len(img)-1]); !errors.Is(err, ErrBadInput) {
			t.Errorf("%v: short destination err = %v, want ErrBadInput", enc, err)
		}
	}
}
