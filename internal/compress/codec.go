package compress

import (
	"encoding/binary"
	"fmt"
)

// The wire codec serializes an encoded column into one contiguous
// image so the device path can ship compressed bytes over the bus and
// cache them device-side. The frame is self-describing:
//
//	byte  0     encoding
//	byte  1     FOR delta width (0 otherwise)
//	bytes 2-3   element size, uint16 LE
//	bytes 4-7   element count, uint32 LE
//	bytes 8-    encoding payload:
//	  Raw   raw bytes (n·size)
//	  RLE   run count uint32, run values (runs·size), run ends (runs·4)
//	  Dict  dict byte length uint32, dict bytes, codes (n)
//	  FOR   frame base int64, deltas (n·width)
//
// The frame length is CompressedBytes() plus a constant few bytes of
// header, so "bus cost = compressed bytes" holds to within the header.

const codecHeader = 8

// MarshaledBytes returns the exact length Marshal will produce.
func (c *Column) MarshaledBytes() int {
	n := codecHeader
	switch c.enc {
	case Raw:
		n += len(c.raw)
	case RLE:
		n += 4 + len(c.runVals) + 4*len(c.runEnds)
	case Dict:
		n += 4 + len(c.dict) + len(c.codes)
	case FOR:
		n += 8 + len(c.deltas)
	}
	return n
}

// Marshal serializes the column into a fresh contiguous image.
func (c *Column) Marshal() []byte {
	out := make([]byte, codecHeader, c.MarshaledBytes())
	out[0] = byte(c.enc)
	out[1] = byte(c.width)
	binary.LittleEndian.PutUint16(out[2:], uint16(c.size))
	binary.LittleEndian.PutUint32(out[4:], uint32(c.n))
	switch c.enc {
	case Raw:
		out = append(out, c.raw...)
	case RLE:
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c.runEnds)))
		out = append(out, c.runVals...)
		for _, e := range c.runEnds {
			out = binary.LittleEndian.AppendUint32(out, e)
		}
	case Dict:
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c.dict)))
		out = append(out, c.dict...)
		out = append(out, c.codes...)
	case FOR:
		out = binary.LittleEndian.AppendUint64(out, uint64(c.base))
		out = append(out, c.deltas...)
	}
	return out
}

// Decode reconstructs a column from a Marshal image. The payload slices
// alias data; callers that mutate data must copy first.
func Decode(data []byte) (*Column, error) {
	if len(data) < codecHeader {
		return nil, fmt.Errorf("%w: %d-byte image below %d-byte header", ErrBadInput, len(data), codecHeader)
	}
	c := &Column{
		enc:   Encoding(data[0]),
		width: int(data[1]),
		size:  int(binary.LittleEndian.Uint16(data[2:])),
		n:     int(binary.LittleEndian.Uint32(data[4:])),
	}
	if c.size <= 0 || c.n < 0 {
		return nil, fmt.Errorf("%w: %d elements of %d bytes", ErrBadInput, c.n, c.size)
	}
	body := data[codecHeader:]
	switch c.enc {
	case Raw:
		if len(body) < c.n*c.size {
			return nil, fmt.Errorf("%w: raw payload truncated", ErrBadInput)
		}
		c.raw = body[:c.n*c.size]
	case RLE:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: rle payload truncated", ErrBadInput)
		}
		runs := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if runs < 0 || len(body) < runs*c.size+runs*4 {
			return nil, fmt.Errorf("%w: rle payload truncated", ErrBadInput)
		}
		c.runVals = body[:runs*c.size]
		body = body[runs*c.size:]
		c.runEnds = make([]uint32, runs)
		for i := range c.runEnds {
			c.runEnds[i] = binary.LittleEndian.Uint32(body[i*4:])
		}
		if runs > 0 && int(c.runEnds[runs-1]) != c.n {
			return nil, fmt.Errorf("%w: rle run ends do not cover %d elements", ErrBadInput, c.n)
		}
	case Dict:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: dict payload truncated", ErrBadInput)
		}
		dictLen := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if dictLen < 0 || dictLen%c.size != 0 || dictLen/c.size > 256 || len(body) < dictLen+c.n {
			return nil, fmt.Errorf("%w: dict payload truncated", ErrBadInput)
		}
		c.dict = body[:dictLen]
		c.codes = body[dictLen : dictLen+c.n]
		for _, code := range c.codes {
			if int(code)*c.size >= dictLen {
				return nil, fmt.Errorf("%w: dict code %d out of table", ErrBadInput, code)
			}
		}
	case FOR:
		if c.size != 8 || (c.width != 1 && c.width != 2 && c.width != 4 && !(c.n == 0 && c.width == 0)) {
			return nil, fmt.Errorf("%w: for frame with width %d size %d", ErrBadInput, c.width, c.size)
		}
		if len(body) < 8+c.n*c.width {
			return nil, fmt.Errorf("%w: for payload truncated", ErrBadInput)
		}
		c.base = int64(binary.LittleEndian.Uint64(body))
		c.deltas = body[8 : 8+c.n*c.width]
	default:
		return nil, fmt.Errorf("%w: unknown encoding %d", ErrBadInput, data[0])
	}
	return c, nil
}
