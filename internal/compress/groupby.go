package compress

import (
	"encoding/binary"
	"math"
)

// Compressed-domain grouped aggregation: the fused predicate→group-by
// pipeline's leaf kernels over encoded payloads. Each encoding keeps the
// short-cut its sargable scan uses —
//
//   - RLE evaluates the predicate and decodes the value once per run,
//     then streams the run's elements through the key column,
//   - Dict pre-filters the ≤256-entry dictionary into a code bitset and
//     a decoded value table, then tests one bit per element,
//   - FOR (integers) compares narrow deltas against delta-domain bounds
//     and accumulates per-group delta sums, reconstructing each group's
//     total with the closed-form bias base·count at the end,
//   - Raw degenerates to the plain fused loop.
//
// The value column is the compressed one; group keys come from the
// caller through keyAt (the executor aligns the key column — raw or
// decompressed — to the same element positions). Float64 adds stay
// element-ordered so per-group sums are bit-identical to decompressing
// and running the executor's fused grouped kernel.

// GroupSumFloat64Where streams SUM partials per group over an 8-byte
// IEEE-754 column: add is invoked once per matching element, in element
// order, with the element's group key and decoded value.
func (c *Column) GroupSumFloat64Where(p Pred[float64], keyAt func(i int) int64, add func(key int64, v float64)) error {
	if err := c.errNot8("float64 group-sum-where"); err != nil {
		return err
	}
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			v := math.Float64frombits(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			if p.Match(v) {
				for i := start; i < end; i++ {
					add(keyAt(int(i)), v)
				}
			}
			start = end
		}
	case Dict:
		var bits codeBits
		var vals [256]float64
		for code := 0; code < len(c.dict)/8; code++ {
			v := c.dictFloat64(code)
			vals[code] = v
			if p.Match(v) {
				bits.set(code)
			}
		}
		for i, code := range c.codes {
			if bits.has(code) {
				add(keyAt(i), vals[code])
			}
		}
	case FOR:
		for i := 0; i < c.n; i++ {
			if x := math.Float64frombits(uint64(c.base + int64(c.delta(i)))); p.Match(x) {
				add(keyAt(i), x)
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if x := math.Float64frombits(binary.LittleEndian.Uint64(c.raw[i*8:])); p.Match(x) {
				add(keyAt(i), x)
			}
		}
	}
	return nil
}

// GroupSumInt64Where streams SUM/COUNT partials per group over an
// 8-byte integer column. emit receives per-group partial (sum, count)
// pairs; integer addition is exact mod 2^64, so FOR accumulates in the
// delta domain and emits each group once with the closed-form bias
// base·count folded in, while the other encodings emit per element.
func (c *Column) GroupSumInt64Where(p Pred[int64], keyAt func(i int) int64, emit func(key, sum, count int64)) error {
	if err := c.errNot8("int64 group-sum-where"); err != nil {
		return err
	}
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			v := int64(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			if p.Match(v) {
				for i := start; i < end; i++ {
					emit(keyAt(int(i)), v, 1)
				}
			}
			start = end
		}
	case Dict:
		var bits codeBits
		var vals [256]int64
		for code := 0; code < len(c.dict)/8; code++ {
			v := c.dictInt64(code)
			vals[code] = v
			if p.Match(v) {
				bits.set(code)
			}
		}
		for i, code := range c.codes {
			if bits.has(code) {
				emit(keyAt(i), vals[code], 1)
			}
		}
	case FOR:
		dLo, dHi, ok := c.forDeltaBounds(p)
		if !ok {
			return nil
		}
		type acc struct {
			ds uint64
			n  int64
		}
		groups := make(map[int64]*acc)
		for i := 0; i < c.n; i++ {
			if d := c.delta(i); dLo <= d && d <= dHi {
				key := keyAt(i)
				g := groups[key]
				if g == nil {
					g = &acc{}
					groups[key] = g
				}
				g.ds += d
				g.n++
			}
		}
		for key, g := range groups {
			emit(key, c.base*g.n+int64(g.ds), g.n)
		}
	default:
		for i := 0; i < c.n; i++ {
			if x := int64(binary.LittleEndian.Uint64(c.raw[i*8:])); p.Match(x) {
				emit(keyAt(i), x, 1)
			}
		}
	}
	return nil
}

// GroupCountWhereFloat64 streams COUNT partials per group over an
// 8-byte IEEE-754 column: hit fires once per matching element.
func (c *Column) GroupCountWhereFloat64(p Pred[float64], keyAt func(i int) int64, hit func(key int64)) error {
	if err := c.errNot8("float64 group-count-where"); err != nil {
		return err
	}
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			if p.Match(math.Float64frombits(binary.LittleEndian.Uint64(c.runVals[k*8:]))) {
				for i := start; i < end; i++ {
					hit(keyAt(int(i)))
				}
			}
			start = end
		}
	case Dict:
		var bits codeBits
		for code := 0; code < len(c.dict)/8; code++ {
			if p.Match(c.dictFloat64(code)) {
				bits.set(code)
			}
		}
		for i, code := range c.codes {
			if bits.has(code) {
				hit(keyAt(i))
			}
		}
	case FOR:
		for i := 0; i < c.n; i++ {
			if p.Match(math.Float64frombits(uint64(c.base + int64(c.delta(i))))) {
				hit(keyAt(i))
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if p.Match(math.Float64frombits(binary.LittleEndian.Uint64(c.raw[i*8:]))) {
				hit(keyAt(i))
			}
		}
	}
	return nil
}

// GroupCountWhereInt64 is GroupCountWhereFloat64 for integer columns;
// FOR compares narrow deltas against the rewritten delta bounds.
func (c *Column) GroupCountWhereInt64(p Pred[int64], keyAt func(i int) int64, hit func(key int64)) error {
	if err := c.errNot8("int64 group-count-where"); err != nil {
		return err
	}
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			if p.Match(int64(binary.LittleEndian.Uint64(c.runVals[k*8:]))) {
				for i := start; i < end; i++ {
					hit(keyAt(int(i)))
				}
			}
			start = end
		}
	case Dict:
		var bits codeBits
		for code := 0; code < len(c.dict)/8; code++ {
			if p.Match(c.dictInt64(code)) {
				bits.set(code)
			}
		}
		for i, code := range c.codes {
			if bits.has(code) {
				hit(keyAt(i))
			}
		}
	case FOR:
		dLo, dHi, ok := c.forDeltaBounds(p)
		if !ok {
			return nil
		}
		for i := 0; i < c.n; i++ {
			if d := c.delta(i); dLo <= d && d <= dHi {
				hit(keyAt(i))
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if p.Match(int64(binary.LittleEndian.Uint64(c.raw[i*8:]))) {
				hit(keyAt(i))
			}
		}
	}
	return nil
}
