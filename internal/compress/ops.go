package compress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file holds the compressed-domain operators: sargable predicate
// scans that run directly on the encoded payload instead of
// decompressing first. Each encoding gets its natural short-cut —
//
//   - RLE evaluates the predicate once per run,
//   - Dict pre-filters the ≤256-entry dictionary into a code bitset and
//     then only tests one bit per element,
//   - FOR (integers) rewrites the predicate bounds into the delta
//     domain and compares narrow deltas without reconstructing values,
//   - Raw degenerates to the plain fused scan.
//
// Float64 accumulation deliberately stays element-ordered (a run value
// is added run-length times, not multiplied) so results are
// bit-identical to decompressing and running the executor's fused
// kernels; int64 arithmetic is exact mod 2^64, so closed forms are used
// where available.

// Op mirrors the executor's sargable comparison vocabulary. The package
// cannot import internal/exec (exec imports compress), so the enum
// lives here with identical ordering and semantics; bridging is a field
// copy.
type Op uint8

// Predicate comparisons.
const (
	// OpEQ selects x == Lo.
	OpEQ Op = iota
	// OpLT selects x < Hi (strict).
	OpLT
	// OpGT selects x > Lo (strict).
	OpGT
	// OpBetween selects Lo <= x <= Hi (inclusive).
	OpBetween
)

// Pred is a sargable predicate over one 8-byte numeric column, the
// compressed-domain twin of exec.Pred.
type Pred[T int64 | float64] struct {
	// Op is the comparison.
	Op Op
	// Lo is the lower/equality bound (OpEQ, OpGT, OpBetween).
	Lo T
	// Hi is the upper bound (OpLT, OpBetween).
	Hi T
}

// Match evaluates the predicate on one value.
func (p Pred[T]) Match(x T) bool {
	switch p.Op {
	case OpEQ:
		return x == p.Lo
	case OpLT:
		return x < p.Hi
	case OpGT:
		return x > p.Lo
	case OpBetween:
		return p.Lo <= x && x <= p.Hi
	default:
		return false
	}
}

// codeBits is a 256-way bitset over dictionary codes.
type codeBits [4]uint64

func (b *codeBits) set(code int)       { b[code>>6] |= 1 << (code & 63) }
func (b *codeBits) has(code byte) bool { return b[code>>6]&(1<<(code&63)) != 0 }

// dictFloat64 decodes dictionary entry code.
func (c *Column) dictFloat64(code int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.dict[code*8:]))
}

// dictInt64 decodes dictionary entry code.
func (c *Column) dictInt64(code int) int64 {
	return int64(binary.LittleEndian.Uint64(c.dict[code*8:]))
}

// errNot8 rejects non-8-byte columns from the numeric operators.
func (c *Column) errNot8(what string) error {
	if c.size != 8 {
		return fmt.Errorf("%w: %s over %d-byte elements", ErrBadInput, what, c.size)
	}
	return nil
}

// SumFloat64Where computes SUM(x), COUNT(*) WHERE p over an 8-byte
// IEEE-754 column in the compressed domain. Results are bit-identical
// to decompressing and summing elementwise in order.
func (c *Column) SumFloat64Where(p Pred[float64]) (float64, int64, error) {
	if err := c.errNot8("float64 sum-where"); err != nil {
		return 0, 0, err
	}
	var sum float64
	var n int64
	switch c.enc {
	case RLE:
		// One predicate evaluation per run; the matching value is still
		// accumulated once per element so float ordering is preserved.
		start := uint32(0)
		for k, end := range c.runEnds {
			v := math.Float64frombits(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			if p.Match(v) {
				for i := start; i < end; i++ {
					sum += v
				}
				n += int64(end - start)
			}
			start = end
		}
	case Dict:
		var bits codeBits
		var vals [256]float64
		for code := 0; code < len(c.dict)/8; code++ {
			v := c.dictFloat64(code)
			vals[code] = v
			if p.Match(v) {
				bits.set(code)
			}
		}
		for _, code := range c.codes {
			if bits.has(code) {
				sum += vals[code]
				n++
			}
		}
	case FOR:
		// FOR frames the value's bit pattern; IEEE ordering is unrelated
		// to delta ordering, so floats decode elementwise.
		for i := 0; i < c.n; i++ {
			if x := math.Float64frombits(uint64(c.base + int64(c.delta(i)))); p.Match(x) {
				sum += x
				n++
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if x := math.Float64frombits(binary.LittleEndian.Uint64(c.raw[i*8:])); p.Match(x) {
				sum += x
				n++
			}
		}
	}
	return sum, n, nil
}

// SumInt64Where computes SUM(x), COUNT(*) WHERE p over an 8-byte
// integer column in the compressed domain. Integer addition is exact
// mod 2^64, so RLE and Dict use closed forms and FOR rewrites the
// bounds into the delta domain.
func (c *Column) SumInt64Where(p Pred[int64]) (int64, int64, error) {
	if err := c.errNot8("int64 sum-where"); err != nil {
		return 0, 0, err
	}
	var sum, n int64
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			v := int64(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			if p.Match(v) {
				sum += v * int64(end-start)
				n += int64(end - start)
			}
			start = end
		}
	case Dict:
		var bits codeBits
		var vals [256]int64
		for code := 0; code < len(c.dict)/8; code++ {
			v := c.dictInt64(code)
			vals[code] = v
			if p.Match(v) {
				bits.set(code)
			}
		}
		var counts [256]int64
		for _, code := range c.codes {
			counts[code]++
		}
		for code := 0; code < len(c.dict)/8; code++ {
			if bits.has(byte(code)) {
				sum += vals[code] * counts[code]
				n += counts[code]
			}
		}
	case FOR:
		dLo, dHi, ok := c.forDeltaBounds(p)
		if !ok {
			return 0, 0, nil
		}
		var ds uint64
		for i := 0; i < c.n; i++ {
			if d := c.delta(i); dLo <= d && d <= dHi {
				ds += d
				n++
			}
		}
		sum = c.base*n + int64(ds)
	default:
		for i := 0; i < c.n; i++ {
			if x := int64(binary.LittleEndian.Uint64(c.raw[i*8:])); p.Match(x) {
				sum += x
				n++
			}
		}
	}
	return sum, n, nil
}

// CountWhereFloat64 counts matches of p over an 8-byte IEEE-754 column
// in the compressed domain.
func (c *Column) CountWhereFloat64(p Pred[float64]) (int64, error) {
	if err := c.errNot8("float64 count-where"); err != nil {
		return 0, err
	}
	var n int64
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			if p.Match(math.Float64frombits(binary.LittleEndian.Uint64(c.runVals[k*8:]))) {
				n += int64(end - start)
			}
			start = end
		}
	case Dict:
		var bits codeBits
		for code := 0; code < len(c.dict)/8; code++ {
			if p.Match(c.dictFloat64(code)) {
				bits.set(code)
			}
		}
		for _, code := range c.codes {
			if bits.has(code) {
				n++
			}
		}
	case FOR:
		for i := 0; i < c.n; i++ {
			if p.Match(math.Float64frombits(uint64(c.base + int64(c.delta(i))))) {
				n++
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if p.Match(math.Float64frombits(binary.LittleEndian.Uint64(c.raw[i*8:]))) {
				n++
			}
		}
	}
	return n, nil
}

// CountWhereInt64 counts matches of p over an 8-byte integer column in
// the compressed domain.
func (c *Column) CountWhereInt64(p Pred[int64]) (int64, error) {
	if err := c.errNot8("int64 count-where"); err != nil {
		return 0, err
	}
	var n int64
	switch c.enc {
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			if p.Match(int64(binary.LittleEndian.Uint64(c.runVals[k*8:]))) {
				n += int64(end - start)
			}
			start = end
		}
	case Dict:
		var bits codeBits
		for code := 0; code < len(c.dict)/8; code++ {
			if p.Match(c.dictInt64(code)) {
				bits.set(code)
			}
		}
		for _, code := range c.codes {
			if bits.has(code) {
				n++
			}
		}
	case FOR:
		dLo, dHi, ok := c.forDeltaBounds(p)
		if !ok {
			return 0, nil
		}
		for i := 0; i < c.n; i++ {
			if d := c.delta(i); dLo <= d && d <= dHi {
				n++
			}
		}
	default:
		for i := 0; i < c.n; i++ {
			if p.Match(int64(binary.LittleEndian.Uint64(c.raw[i*8:]))) {
				n++
			}
		}
	}
	return n, nil
}

// forDeltaBounds rewrites an int64 predicate into the FOR delta domain:
// x = base + d with d in [0, 2^(8·width)), so p over x becomes the
// closed delta interval [dLo, dHi]. ok is false when no delta can
// match.
func (c *Column) forDeltaBounds(p Pred[int64]) (dLo, dHi uint64, ok bool) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	switch p.Op {
	case OpEQ:
		lo, hi = p.Lo, p.Lo
	case OpLT:
		if p.Hi == math.MinInt64 {
			return 0, 0, false
		}
		hi = p.Hi - 1
	case OpGT:
		if p.Lo == math.MaxInt64 {
			return 0, 0, false
		}
		lo = p.Lo + 1
	case OpBetween:
		if p.Lo > p.Hi {
			return 0, 0, false
		}
		lo, hi = p.Lo, p.Hi
	default:
		return 0, 0, false
	}
	if c.n == 0 || hi < c.base {
		return 0, 0, false
	}
	maxDelta := uint64(1)<<(8*c.width) - 1
	if lo > c.base {
		// Unsigned subtraction yields the exact non-negative difference
		// even when the signed difference would overflow.
		dLo = uint64(lo) - uint64(c.base)
		if dLo > maxDelta {
			return 0, 0, false
		}
	}
	dHi = uint64(hi) - uint64(c.base)
	if dHi > maxDelta {
		dHi = maxDelta
	}
	return dLo, dHi, true
}
