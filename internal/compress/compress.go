// Package compress implements the lightweight column-compression schemes
// main-memory column stores rely on (the paper cites improved compression
// rates as a core DSM benefit in Section II-A, and L-Store's base pages
// are "read-only (and compressed)", Section IV-B.4):
//
//   - run-length encoding (RLE) for repetitive columns,
//   - dictionary encoding for low-cardinality columns,
//   - frame-of-reference (FOR) for integer columns with a narrow range,
//   - raw storage as the universal fallback.
//
// Compress tries every applicable scheme and keeps the smallest. Encoded
// columns support random access (At), full decompression, and fast-path
// aggregation without materializing.
package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Encoding enumerates the schemes.
type Encoding uint8

// The encodings.
const (
	// Raw stores elements unencoded.
	Raw Encoding = iota
	// RLE stores (count, value) runs.
	RLE
	// Dict stores one byte per element indexing a value dictionary of up
	// to 256 distinct values.
	Dict
	// FOR stores int64 elements as fixed-width unsigned deltas from the
	// column minimum.
	FOR
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case Raw:
		return "raw"
	case RLE:
		return "rle"
	case Dict:
		return "dict"
	case FOR:
		return "for"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// Compression errors.
var (
	// ErrBadInput is returned for inconsistent length/size arguments.
	ErrBadInput = errors.New("compress: bad input")
	// ErrNotApplicable is returned when a requested scheme cannot encode
	// the column (e.g. dictionary over 256 distinct values).
	ErrNotApplicable = errors.New("compress: encoding not applicable")
	// ErrOutOfRange is returned for element indexes out of range.
	ErrOutOfRange = errors.New("compress: index out of range")
)

// Column is one encoded column region: n fixed-width elements.
type Column struct {
	enc  Encoding
	n    int
	size int
	// raw/dict/rle/for payloads; only the active encoding's fields are set.
	raw     []byte
	runVals []byte   // RLE: run values, size bytes each
	runEnds []uint32 // RLE: cumulative element counts (exclusive end)
	dict    []byte   // Dict: value table, size bytes each
	codes   []byte   // Dict: one code per element
	base    int64    // FOR: frame base
	width   int      // FOR: delta bytes (1, 2, 4)
	deltas  []byte   // FOR: packed deltas
	// lastRun memoizes the most recent findRun hit so sequential access
	// patterns skip the binary search; atomic so concurrent readers stay
	// race-free (the memo is advisory — any stale value only costs the
	// search).
	lastRun atomic.Int32
}

// Encoding returns the scheme in use.
func (c *Column) Encoding() Encoding { return c.enc }

// Len returns the element count.
func (c *Column) Len() int { return c.n }

// ElementSize returns the element width in bytes.
func (c *Column) ElementSize() int { return c.size }

// Runs returns the run count of an RLE column (0 for other encodings),
// the granularity its compressed-domain predicate evaluation works at.
func (c *Column) Runs() int { return len(c.runEnds) }

// CompressedBytes returns the encoded payload size.
func (c *Column) CompressedBytes() int {
	switch c.enc {
	case Raw:
		return len(c.raw)
	case RLE:
		return len(c.runVals) + 4*len(c.runEnds)
	case Dict:
		return len(c.dict) + len(c.codes)
	case FOR:
		return 8 + len(c.deltas)
	default:
		return 0
	}
}

// Ratio returns uncompressed/compressed size (higher is better).
func (c *Column) Ratio() float64 {
	cb := c.CompressedBytes()
	if cb == 0 {
		return 1
	}
	return float64(c.n*c.size) / float64(cb)
}

// Compress encodes n elements of size bytes each from data, choosing the
// smallest applicable scheme.
func Compress(data []byte, n, size int) (*Column, error) {
	if size <= 0 || n < 0 || len(data) < n*size {
		return nil, fmt.Errorf("%w: %d elements of %d bytes in %d-byte buffer", ErrBadInput, n, size, len(data))
	}
	best, err := CompressAs(Raw, data, n, size)
	if err != nil {
		return nil, err
	}
	for _, enc := range []Encoding{RLE, Dict, FOR} {
		c, err := CompressAs(enc, data, n, size)
		if errors.Is(err, ErrNotApplicable) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if c.CompressedBytes() < best.CompressedBytes() {
			best = c
		}
	}
	return best, nil
}

// CompressAs encodes with a specific scheme.
func CompressAs(enc Encoding, data []byte, n, size int) (*Column, error) {
	if size <= 0 || n < 0 || len(data) < n*size {
		return nil, fmt.Errorf("%w: %d elements of %d bytes in %d-byte buffer", ErrBadInput, n, size, len(data))
	}
	c := &Column{enc: enc, n: n, size: size}
	switch enc {
	case Raw:
		c.raw = append([]byte(nil), data[:n*size]...)
		return c, nil
	case RLE:
		return c, c.encodeRLE(data)
	case Dict:
		return c, c.encodeDict(data)
	case FOR:
		return c, c.encodeFOR(data)
	default:
		return nil, fmt.Errorf("%w: unknown encoding %d", ErrNotApplicable, enc)
	}
}

// encodeRLE builds (value, cumulative-end) runs.
func (c *Column) encodeRLE(data []byte) error {
	for i := 0; i < c.n; i++ {
		el := data[i*c.size : (i+1)*c.size]
		last := len(c.runEnds) - 1
		if last >= 0 && bytes.Equal(el, c.runVals[last*c.size:(last+1)*c.size]) {
			c.runEnds[last]++
			continue
		}
		c.runVals = append(c.runVals, el...)
		// Ends are cumulative-exclusive element indexes; extending a run
		// above increments the last end, so they stay strictly increasing.
		c.runEnds = append(c.runEnds, uint32(i+1))
	}
	return nil
}

// encodeDict builds a ≤256-entry dictionary.
func (c *Column) encodeDict(data []byte) error {
	index := make(map[string]int)
	c.codes = make([]byte, c.n)
	for i := 0; i < c.n; i++ {
		el := string(data[i*c.size : (i+1)*c.size])
		code, ok := index[el]
		if !ok {
			if len(index) == 256 {
				return fmt.Errorf("%w: more than 256 distinct values", ErrNotApplicable)
			}
			code = len(index)
			index[el] = code
			c.dict = append(c.dict, el...)
		}
		c.codes[i] = byte(code)
	}
	return nil
}

// encodeFOR frames 8-byte little-endian integers.
func (c *Column) encodeFOR(data []byte) error {
	if c.size != 8 {
		return fmt.Errorf("%w: FOR requires 8-byte integers", ErrNotApplicable)
	}
	if c.n == 0 {
		return nil
	}
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	for i := 0; i < c.n; i++ {
		v := int64(binary.LittleEndian.Uint64(data[i*8:]))
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := uint64(max - min)
	switch {
	case span < 1<<8:
		c.width = 1
	case span < 1<<16:
		c.width = 2
	case span < 1<<32:
		c.width = 4
	default:
		return fmt.Errorf("%w: value span %d exceeds 32-bit frame", ErrNotApplicable, span)
	}
	c.base = min
	c.deltas = make([]byte, c.n*c.width)
	for i := 0; i < c.n; i++ {
		v := int64(binary.LittleEndian.Uint64(data[i*8:]))
		d := uint64(v - min)
		switch c.width {
		case 1:
			c.deltas[i] = byte(d)
		case 2:
			binary.LittleEndian.PutUint16(c.deltas[i*2:], uint16(d))
		case 4:
			binary.LittleEndian.PutUint32(c.deltas[i*4:], uint32(d))
		}
	}
	return nil
}

// At decodes element i into dst (which must be at least ElementSize
// bytes) and returns dst[:size].
func (c *Column) At(i int, dst []byte) ([]byte, error) {
	if i < 0 || i >= c.n {
		return nil, fmt.Errorf("%w: element %d of %d", ErrOutOfRange, i, c.n)
	}
	if len(dst) < c.size {
		return nil, fmt.Errorf("%w: %d-byte buffer for %d-byte element", ErrBadInput, len(dst), c.size)
	}
	switch c.enc {
	case Raw:
		copy(dst, c.raw[i*c.size:(i+1)*c.size])
	case RLE:
		k := c.findRun(uint32(i))
		copy(dst, c.runVals[k*c.size:(k+1)*c.size])
	case Dict:
		code := int(c.codes[i])
		copy(dst, c.dict[code*c.size:(code+1)*c.size])
	case FOR:
		binary.LittleEndian.PutUint64(dst, uint64(c.base+int64(c.delta(i))))
	}
	return dst[:c.size], nil
}

// findRun locates the run containing element i: first against the
// memoized last hit (and its successor, the sequential-access case),
// then by binary search.
func (c *Column) findRun(i uint32) int {
	if m := int(c.lastRun.Load()); m >= 0 && m < len(c.runEnds) {
		if i < c.runEnds[m] && (m == 0 || i >= c.runEnds[m-1]) {
			return m
		}
		if m+1 < len(c.runEnds) && i >= c.runEnds[m] && i < c.runEnds[m+1] {
			c.lastRun.Store(int32(m + 1))
			return m + 1
		}
	}
	lo, hi := 0, len(c.runEnds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.runEnds[mid] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.lastRun.Store(int32(lo))
	return lo
}

// Decompress materializes the full column.
func (c *Column) Decompress() []byte {
	out := make([]byte, c.n*c.size)
	c.DecompressInto(out)
	return out
}

// DecompressInto bulk-decodes the column into dst, which must hold at
// least Len()*ElementSize() bytes, and returns the filled prefix. Each
// encoding takes its natural bulk path — straight copy for Raw, run
// fills for RLE, dictionary gathers for Dict and delta widening for FOR
// — instead of the per-element At loop.
func (c *Column) DecompressInto(dst []byte) ([]byte, error) {
	total := c.n * c.size
	if len(dst) < total {
		return nil, fmt.Errorf("%w: %d-byte buffer for %d-byte column", ErrBadInput, len(dst), total)
	}
	dst = dst[:total]
	switch c.enc {
	case Raw:
		copy(dst, c.raw)
	case RLE:
		start := uint32(0)
		for k, end := range c.runEnds {
			val := c.runVals[k*c.size : (k+1)*c.size]
			for i := int(start); i < int(end); i++ {
				copy(dst[i*c.size:], val)
			}
			start = end
		}
	case Dict:
		for i, code := range c.codes {
			copy(dst[i*c.size:], c.dict[int(code)*c.size:(int(code)+1)*c.size])
		}
	case FOR:
		for i := 0; i < c.n; i++ {
			binary.LittleEndian.PutUint64(dst[i*8:], uint64(c.base+int64(c.delta(i))))
		}
	}
	// A bulk decode typically precedes a fresh access pattern over the
	// same Column (merge-then-reread, cache refill); park the run memo at
	// the first run so the sequential fast path re-engages from the start
	// instead of binary-searching away from wherever the previous reader
	// left it.
	c.lastRun.Store(0)
	return dst, nil
}

// delta returns FOR delta i widened to uint64.
func (c *Column) delta(i int) uint64 {
	switch c.width {
	case 1:
		return uint64(c.deltas[i])
	case 2:
		return uint64(binary.LittleEndian.Uint16(c.deltas[i*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(c.deltas[i*4:]))
	}
	return 0
}

// ForEach streams every element in order without allocating per element.
func (c *Column) ForEach(fn func(i int, el []byte)) {
	tmp := make([]byte, c.size)
	switch c.enc {
	case RLE:
		// Stream run-wise: decode each run value once.
		start := uint32(0)
		for k, end := range c.runEnds {
			val := c.runVals[k*c.size : (k+1)*c.size]
			for i := start; i < end; i++ {
				fn(int(i), val)
			}
			start = end
		}
	default:
		for i := 0; i < c.n; i++ {
			v, _ := c.At(i, tmp)
			fn(i, v)
		}
	}
}

// SumFloat64 aggregates an 8-byte IEEE-754 column without materializing;
// RLE multiplies run values by their lengths.
func (c *Column) SumFloat64() (float64, error) {
	if c.size != 8 {
		return 0, fmt.Errorf("%w: float64 sum over %d-byte elements", ErrBadInput, c.size)
	}
	switch c.enc {
	case RLE:
		var sum float64
		start := uint32(0)
		for k, end := range c.runEnds {
			v := math.Float64frombits(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			sum += v * float64(end-start)
			start = end
		}
		return sum, nil
	case Raw:
		var sum float64
		for i := 0; i < c.n; i++ {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(c.raw[i*8:]))
		}
		return sum, nil
	case Dict:
		// Sum per dictionary code, then weight by code frequency.
		counts := make([]int, len(c.dict)/8)
		for _, code := range c.codes {
			counts[code]++
		}
		var sum float64
		for code, n := range counts {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(c.dict[code*8:])) * float64(n)
		}
		return sum, nil
	case FOR:
		var sum float64
		for i := 0; i < c.n; i++ {
			sum += math.Float64frombits(uint64(c.base + int64(c.delta(i))))
		}
		return sum, nil
	default:
		var sum float64
		var tmp [8]byte
		for i := 0; i < c.n; i++ {
			if _, err := c.At(i, tmp[:]); err != nil {
				return 0, err
			}
			sum += math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
		}
		return sum, nil
	}
}

// SumInt64 aggregates an 8-byte integer column; FOR sums deltas against
// the frame base without decoding each element to full width.
func (c *Column) SumInt64() (int64, error) {
	if c.size != 8 {
		return 0, fmt.Errorf("%w: int64 sum over %d-byte elements", ErrBadInput, c.size)
	}
	switch c.enc {
	case FOR:
		var ds uint64
		for i := 0; i < c.n; i++ {
			ds += c.delta(i)
		}
		return c.base*int64(c.n) + int64(ds), nil
	case RLE:
		var sum int64
		start := uint32(0)
		for k, end := range c.runEnds {
			v := int64(binary.LittleEndian.Uint64(c.runVals[k*8:]))
			sum += v * int64(end-start)
			start = end
		}
		return sum, nil
	case Raw:
		var sum int64
		for i := 0; i < c.n; i++ {
			sum += int64(binary.LittleEndian.Uint64(c.raw[i*8:]))
		}
		return sum, nil
	case Dict:
		counts := make([]int, len(c.dict)/8)
		for _, code := range c.codes {
			counts[code]++
		}
		var sum int64
		for code, n := range counts {
			sum += int64(binary.LittleEndian.Uint64(c.dict[code*8:])) * int64(n)
		}
		return sum, nil
	default:
		var sum int64
		var tmp [8]byte
		for i := 0; i < c.n; i++ {
			if _, err := c.At(i, tmp[:]); err != nil {
				return 0, err
			}
			sum += int64(binary.LittleEndian.Uint64(tmp[:]))
		}
		return sum, nil
	}
}

// String summarizes the column.
func (c *Column) String() string {
	return fmt.Sprintf("compressed{%s, %d×%dB, %.2fx}", c.enc, c.n, c.size, c.Ratio())
}
