package compress

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// encodeFloats builds a little-endian float64 column image.
func encodeFloats(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// TestFindRunOutOfOrderAfterDecompressInto is the regression test for
// the lastRun memo: a bulk DecompressInto parks the memo, and random or
// descending At lookups afterwards must still resolve every element
// correctly (the memo is advisory — stale state may only cost the
// binary search, never correctness).
func TestFindRunOutOfOrderAfterDecompressInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 4096)
	v := int64(0)
	for i := range vals {
		if rng.Intn(5) == 0 {
			v++
		}
		vals[i] = v
	}
	c, err := CompressAs(RLE, encodeInts(vals), len(vals), 8)
	if err != nil {
		t.Fatal(err)
	}
	tmp := make([]byte, 8)
	// Ascending pass walks the memo to the last run.
	for i := range vals {
		if _, err := c.At(i, tmp); err != nil {
			t.Fatal(err)
		}
	}
	// Bulk decode reuses the same Column and resets the memo.
	dst := make([]byte, len(vals)*8)
	if _, err := c.DecompressInto(dst); err != nil {
		t.Fatal(err)
	}
	if got := int(c.lastRun.Load()); got != 0 {
		t.Fatalf("lastRun after DecompressInto = %d, want 0", got)
	}
	// Descending and random lookups against the decompressed ground
	// truth: every element must decode exactly.
	check := func(i int) {
		got, err := c.At(i, tmp)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		want := binary.LittleEndian.Uint64(dst[i*8:])
		if binary.LittleEndian.Uint64(got) != want {
			t.Fatalf("At(%d) = %d, want %d", i, binary.LittleEndian.Uint64(got), want)
		}
	}
	for i := len(vals) - 1; i >= 0; i-- {
		check(i)
	}
	if _, err := c.DecompressInto(dst); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10_000; trial++ {
		check(rng.Intn(len(vals)))
	}
}

// refGroupF64 is the decompress-then-aggregate reference: element-order
// per-group accumulation over the materialized column.
func refGroupF64(vals []float64, keys []int64, match func(float64) bool) (map[int64]float64, map[int64]int64) {
	sums := make(map[int64]float64)
	counts := make(map[int64]int64)
	for i, v := range vals {
		if match(v) {
			sums[keys[i]] += v
			counts[keys[i]]++
		}
	}
	return sums, counts
}

func TestGroupSumFloat64WhereAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2048
	vals := make([]float64, n)
	keys := make([]int64, n)
	for i := range vals {
		vals[i] = float64(rng.Intn(40)) // ≤256 distinct → Dict applies; runs form too
		keys[i] = int64(rng.Intn(8))
	}
	// Sprinkle NaNs: they match no predicate and must never reach add.
	for i := 0; i < n; i += 97 {
		vals[i] = math.NaN()
	}
	data := encodeFloats(vals)
	p := Pred[float64]{Op: OpBetween, Lo: 5, Hi: 25}
	wantSums, wantCounts := refGroupF64(vals, keys, p.Match)
	keyAt := func(i int) int64 { return keys[i] }
	for _, enc := range []Encoding{Raw, RLE, Dict} {
		c, err := CompressAs(enc, data, n, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		gotSums := make(map[int64]float64)
		gotCounts := make(map[int64]int64)
		err = c.GroupSumFloat64Where(p, keyAt, func(key int64, v float64) {
			gotSums[key] += v
			gotCounts[key]++
		})
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if len(gotSums) != len(wantSums) {
			t.Fatalf("%v: %d groups, want %d", enc, len(gotSums), len(wantSums))
		}
		for k, want := range wantSums {
			if gotSums[k] != want { // bit-identical: element-ordered adds
				t.Fatalf("%v: group %d sum = %v, want %v", enc, k, gotSums[k], want)
			}
			if gotCounts[k] != wantCounts[k] {
				t.Fatalf("%v: group %d count = %d, want %d", enc, k, gotCounts[k], wantCounts[k])
			}
		}
	}
}

func TestGroupSumInt64WhereAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 2048
	vals := make([]int64, n)
	keys := make([]int64, n)
	for i := range vals {
		vals[i] = 1_000_000 + int64(rng.Intn(200)) // narrow range → FOR applies
		keys[i] = int64(rng.Intn(6))
	}
	data := encodeInts(vals)
	p := Pred[int64]{Op: OpGT, Lo: 1_000_050}
	wantSums := make(map[int64]int64)
	wantCounts := make(map[int64]int64)
	for i, v := range vals {
		if p.Match(v) {
			wantSums[keys[i]] += v
			wantCounts[keys[i]]++
		}
	}
	keyAt := func(i int) int64 { return keys[i] }
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, data, n, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		gotSums := make(map[int64]int64)
		gotCounts := make(map[int64]int64)
		err = c.GroupSumInt64Where(p, keyAt, func(key, sum, count int64) {
			gotSums[key] += sum
			gotCounts[key] += count
		})
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		if len(gotSums) != len(wantSums) {
			t.Fatalf("%v: %d groups, want %d", enc, len(gotSums), len(wantSums))
		}
		for k, want := range wantSums {
			if gotSums[k] != want {
				t.Fatalf("%v: group %d sum = %d, want %d", enc, k, gotSums[k], want)
			}
			if gotCounts[k] != wantCounts[k] {
				t.Fatalf("%v: group %d count = %d, want %d", enc, k, gotCounts[k], wantCounts[k])
			}
		}
	}
}

func TestGroupCountWhereAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 1024
	fvals := make([]float64, n)
	ivals := make([]int64, n)
	keys := make([]int64, n)
	for i := range fvals {
		fvals[i] = float64(rng.Intn(30))
		ivals[i] = 500 + int64(rng.Intn(100))
		keys[i] = int64(rng.Intn(4))
	}
	keyAt := func(i int) int64 { return keys[i] }

	fp := Pred[float64]{Op: OpLT, Hi: 10}
	wantF := make(map[int64]int64)
	for i, v := range fvals {
		if fp.Match(v) {
			wantF[keys[i]]++
		}
	}
	for _, enc := range []Encoding{Raw, RLE, Dict} {
		c, err := CompressAs(enc, encodeFloats(fvals), n, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got := make(map[int64]int64)
		if err := c.GroupCountWhereFloat64(fp, keyAt, func(key int64) { got[key]++ }); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		for k, want := range wantF {
			if got[k] != want {
				t.Fatalf("%v: float group %d count = %d, want %d", enc, k, got[k], want)
			}
		}
	}

	ip := Pred[int64]{Op: OpEQ, Lo: 550}
	wantI := make(map[int64]int64)
	for i, v := range ivals {
		if ip.Match(v) {
			wantI[keys[i]]++
		}
	}
	for _, enc := range []Encoding{Raw, RLE, Dict, FOR} {
		c, err := CompressAs(enc, encodeInts(ivals), n, 8)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got := make(map[int64]int64)
		if err := c.GroupCountWhereInt64(ip, keyAt, func(key int64) { got[key]++ }); err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		for k, want := range wantI {
			if got[k] != want {
				t.Fatalf("%v: int group %d count = %d, want %d", enc, k, got[k], want)
			}
		}
	}
}
