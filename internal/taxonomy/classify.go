package taxonomy

import (
	"errors"
	"fmt"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
)

// Capabilities carries the behavioural facts about an engine that cannot
// be read off a structural snapshot: whether multi-layout support is
// native, whether the engine re-organizes at runtime, what coherence
// scheme it uses, and what platform/workload it targets. The classifier
// combines these with structural evidence; Validate cross-checks the two.
type Capabilities struct {
	// BuiltInMultiLayout marks native multi-layout support (as opposed to
	// emulation via same-named replicated relations).
	BuiltInMultiLayout bool
	// Responsive marks runtime re-organization of layouts in response to
	// workload changes.
	Responsive bool
	// VariableLinearization marks engines that can store fat fragments in
	// either NSM or DSM order even if the current snapshot shows one.
	VariableLinearization bool
	// Unconstrained marks strong flexible engines whose fragment
	// definitions have no side-effects on adjacent fragments and no
	// pre-defined partitioning order. Strong flexible engines default to
	// constrained, matching every strong row of the paper's Table 1.
	Unconstrained bool
	// FixedFragmentation marks engines whose fragmentation is dictated by
	// an external constant (e.g. PAX page size) rather than chosen per
	// relation; the paper classifies such engines as inflexible even
	// though their layouts physically contain many fragments.
	FixedFragmentation bool
	// ClusterDistributed marks engines that distribute fragments across
	// cluster nodes (ES²), which makes locality distributed even when all
	// bytes are host-kind memory.
	ClusterDistributed bool
	// Scheme is the declared fragment coherence scheme.
	Scheme FragmentScheme
	// Processors is the targeted compute platform set.
	Processors ProcessorSupport
	// Workloads is the targeted workload mix.
	Workloads WorkloadSupport
	// PrimaryDeclared optionally overrides the derived primary-copy
	// location (e.g. disk-based engines whose snapshot shows the
	// in-memory working set).
	PrimaryDeclared LocationKind
	// HasPrimaryDeclared gates PrimaryDeclared.
	HasPrimaryDeclared bool
	// Year is the publication year recorded in the survey row.
	Year int
}

// ErrNoEvidence is returned when a snapshot has no layouts or fragments to
// classify.
var ErrNoEvidence = errors.New("taxonomy: snapshot has no layouts or fragments")

// Classify derives a Classification for the engine named name from the
// structural snapshot of a representative relation plus the declared
// capabilities. This is the operational core of the paper's Section III:
// Table 1 falls out of applying Classify to each engine implementation.
func Classify(name string, snap layout.Snapshot, caps Capabilities) (Classification, error) {
	if len(snap.Layouts) == 0 {
		return Classification{}, fmt.Errorf("%w: relation %q", ErrNoEvidence, snap.Relation)
	}
	nFrags := 0
	for _, l := range snap.Layouts {
		nFrags += len(l.Fragments)
	}
	if nFrags == 0 {
		return Classification{}, fmt.Errorf("%w: relation %q has empty layouts", ErrNoEvidence, snap.Relation)
	}

	c := Classification{
		Name:       name,
		Scheme:     caps.Scheme,
		Processors: caps.Processors,
		Workloads:  caps.Workloads,
		Year:       caps.Year,
	}

	// Layout handling: structural evidence (several live layouts) or a
	// declared native capability (Peloton supports multiple layouts even
	// when a snapshot happens to show one).
	switch {
	case caps.BuiltInMultiLayout:
		c.Handling = MultiLayoutBuiltIn
	case len(snap.Layouts) > 1:
		c.Handling = MultiLayoutEmulated
	default:
		c.Handling = SingleLayout
	}

	// Layout flexibility.
	c.Flexibility = deriveFlexibility(snap, caps)

	// Layout adaptability: responsive only makes sense for flexible engines.
	if caps.Responsive && c.Flexibility.Flexible() {
		c.Adaptability = Responsive
	} else {
		c.Adaptability = Static
	}

	// Data location and locality.
	c.Working = deriveWorking(snap)
	if caps.HasPrimaryDeclared {
		c.Primary = caps.PrimaryDeclared
	} else {
		c.Primary = c.Working
	}
	if c.Working == LocMixed || c.Primary == LocMixed || caps.ClusterDistributed {
		c.Locality = Distributed
	} else {
		c.Locality = Centralized
	}

	// Fragment linearization class.
	c.Linearization = deriveLinearization(snap, caps)

	// Single-layout engines have no cross-layout coherence to manage.
	if c.Handling == SingleLayout && caps.Scheme == SchemeNone {
		c.Scheme = SchemeNone
	}
	return c, nil
}

// deriveFlexibility inspects layout structure for the flexibility class.
func deriveFlexibility(snap layout.Snapshot, caps Capabilities) LayoutFlexibility {
	if caps.FixedFragmentation {
		return Inflexible
	}
	anyCombined := false
	anyMulti := false
	for _, l := range snap.Layouts {
		if l.Combined {
			anyCombined = true
		}
		if len(l.Fragments) > 1 {
			anyMulti = true
		}
	}
	switch {
	case anyCombined:
		if caps.Unconstrained {
			return StrongFlexibleUnconstrained
		}
		return StrongFlexibleConstrained
	case anyMulti:
		return WeakFlexible
	default:
		return Inflexible
	}
}

// deriveWorking folds all fragment spaces into a location kind.
func deriveWorking(snap layout.Snapshot) LocationKind {
	seen := make(map[mem.Space]bool)
	for _, l := range snap.Layouts {
		for _, f := range l.Fragments {
			seen[f.Space] = true
		}
	}
	if len(seen) > 1 {
		return LocMixed
	}
	for s := range seen {
		switch s {
		case mem.Host:
			return LocHost
		case mem.Device:
			return LocDevice
		case mem.Secondary:
			return LocSecondary
		}
	}
	return LocHost
}

// deriveLinearization folds fragment shapes into the engine-level class.
// Linearization evidence is counted by each fragment's physical order:
// NSM/DSM fragments (including degenerate single-column ones, like ES²'s
// PAX-formatted single-attribute partitions) witness fixed linearization;
// directly-linearized thin fragments witness emulation — per-column
// fragments emulate DSM, per-row ones emulate NSM.
func deriveLinearization(snap layout.Snapshot, caps Capabilities) LinearizationClass {
	var nsm, dsm, thinCol, thinRow int
	for _, l := range snap.Layouts {
		for _, f := range l.Fragments {
			switch f.Lin {
			case layout.NSM:
				nsm++
			case layout.DSM:
				dsm++
			default: // direct
				if len(f.Cols) == 1 {
					thinCol++
				} else {
					thinRow++
				}
			}
		}
	}
	anyFixed := nsm+dsm > 0
	anyEmulated := thinCol+thinRow > 0
	switch {
	case anyFixed && anyEmulated:
		// An engine that can relinearize its fat fragments is variable
		// outright; otherwise the mix is the paper's "partially emulated"
		// class, with the fixed direction set by the fat fragments.
		if caps.VariableLinearization {
			return FatVariable
		}
		if nsm >= dsm {
			return VarNSMFixedPartDSMEmulated
		}
		return VarDSMFixedPartNSMEmulated
	case anyFixed:
		// Mirrored NSM+DSM: multiple layouts whose fat fragments disagree
		// in linearization without relinearization support (Fractured
		// Mirrors).
		if len(snap.Layouts) > 1 && nsm > 0 && dsm > 0 && !caps.VariableLinearization {
			return FatNSMPlusDSMFixed
		}
		if caps.VariableLinearization || (nsm > 0 && dsm > 0) {
			return FatVariable
		}
		if nsm > 0 {
			return FatNSMFixed
		}
		return FatDSMFixed
	default:
		// Emulation-only layouts.
		if thinRow > thinCol {
			return ThinNSMEmulated
		}
		return ThinDSMEmulated
	}
}
