package taxonomy

import "strings"

// Node is one node of the taxonomy tree (the paper's Figure 4).
type Node struct {
	// Label is the node's caption.
	Label string
	// Children are the sub-properties or values under this node.
	Children []Node
}

// Tree returns the taxonomy of classification properties exactly as drawn
// in Figure 4 of the paper.
func Tree() Node {
	return Node{Label: "Storage Engine", Children: []Node{
		{Label: "Layout Handling", Children: []Node{
			{Label: "Single Layout"},
			{Label: "Multi Layout", Children: []Node{
				{Label: "Built-In"},
				{Label: "Emulated"},
			}},
		}},
		{Label: "Layout Flexibility", Children: []Node{
			{Label: "Inflexible"},
			{Label: "Flexible", Children: []Node{
				{Label: "Weak"},
				{Label: "Strong", Children: []Node{
					{Label: "Constrained"},
					{Label: "Unconstrained"},
				}},
			}},
		}},
		{Label: "Layout Adaptability", Children: []Node{
			{Label: "Static"},
			{Label: "Responsive"},
		}},
		{Label: "Data Location", Children: []Node{
			{Label: "Target", Children: []Node{
				{Label: "Host-Memory-Only"},
				{Label: "Device-Memory-Only"},
				{Label: "Mixed"},
			}},
			{Label: "Locality", Children: []Node{
				{Label: "Centralized"},
				{Label: "Distributed"},
			}},
		}},
		{Label: "Fragment Linearization", Children: []Node{
			{Label: "Fat Fragments", Children: []Node{
				{Label: "NSM-Fixed"},
				{Label: "DSM-Fixed"},
				{Label: "Variable"},
			}},
			{Label: "Thin Fragments", Children: []Node{
				{Label: "Direct Linearization"},
				{Label: "Emulated", Children: []Node{
					{Label: "NSM"},
					{Label: "DSM"},
					{Label: "Variable", Children: []Node{
						{Label: "DSM-Fixed Partially NSM-Emulated"},
						{Label: "NSM-Fixed Partially DSM-Emulated"},
					}},
				}},
			}},
		}},
		{Label: "Fragment Scheme", Children: []Node{
			{Label: "Replication-Based"},
			{Label: "Delegation-Based"},
		}},
	}}
}

// Render draws the tree with box-drawing characters.
func (n Node) Render() string {
	var b strings.Builder
	b.WriteString(n.Label)
	b.WriteByte('\n')
	renderChildren(&b, n.Children, "")
	return b.String()
}

func renderChildren(b *strings.Builder, children []Node, prefix string) {
	for i, c := range children {
		last := i == len(children)-1
		if last {
			b.WriteString(prefix + "└─ " + c.Label + "\n")
			renderChildren(b, c.Children, prefix+"   ")
		} else {
			b.WriteString(prefix + "├─ " + c.Label + "\n")
			renderChildren(b, c.Children, prefix+"│  ")
		}
	}
}

// Leaves returns all leaf labels of the tree in depth-first order.
func (n Node) Leaves() []string {
	if len(n.Children) == 0 {
		return []string{n.Label}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Walk visits every node depth-first, passing the depth (root = 0).
func (n Node) Walk(fn func(node Node, depth int)) {
	var rec func(Node, int)
	rec = func(x Node, d int) {
		fn(x, d)
		for _, c := range x.Children {
			rec(c, d+1)
		}
	}
	rec(n, 0)
}
