package taxonomy

import (
	"fmt"

	"hybridstore/internal/layout"
)

// Rule identifies one consistency rule implied by the paper's definitions
// in Section III.
type Rule string

// The consistency rules.
const (
	// RuleInflexibleSingleFragment: an inflexible engine supports only one
	// fragment per layout (waived for fixed-fragmentation engines like
	// PAX, whose page-dictated fragmentation the paper still calls
	// inflexible).
	RuleInflexibleSingleFragment Rule = "inflexible-single-fragment"
	// RuleWeakUniformPartitioning: a weak flexible engine's layouts each
	// use one partitioning technique, never a combination.
	RuleWeakUniformPartitioning Rule = "weak-uniform-partitioning"
	// RuleResponsiveRequiresFlexible: static is forced for inflexible
	// engines; responsive requires flexibility.
	RuleResponsiveRequiresFlexible Rule = "responsive-requires-flexible"
	// RuleMixedImpliesDistributed: a mixed data location implies
	// distributed locality, and centralized locality implies a
	// single-kind location.
	RuleMixedImpliesDistributed Rule = "mixed-implies-distributed"
	// RuleMultiLayoutRequiresScheme: relations with more fragments than
	// needed to cover the tuples need a replication- or delegation-based
	// scheme to stay coherent.
	RuleMultiLayoutRequiresScheme Rule = "multi-layout-requires-scheme"
	// RuleDirectOnlyThin: direct linearization appears only on thin
	// fragments (two-dimensional fat fragments require NSM or DSM).
	RuleDirectOnlyThin Rule = "direct-only-thin"
	// RuleStrongRequiresCombined: strong flexibility claims need
	// structural evidence of combined vertical+horizontal partitioning.
	RuleStrongRequiresCombined Rule = "strong-requires-combined"
)

// Violation reports one rule breach found by Validate.
type Violation struct {
	// Rule is the breached rule.
	Rule Rule
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Rule, v.Detail) }

// Validate cross-checks a classification against the structural snapshot
// it was derived from (or any snapshot claimed to realize it) and returns
// all rule violations. A nil/empty result means the classification is
// consistent with the paper's definitions.
func Validate(c Classification, snap layout.Snapshot, caps Capabilities) []Violation {
	var out []Violation

	if c.Flexibility == Inflexible && !caps.FixedFragmentation {
		for _, l := range snap.Layouts {
			if len(l.Fragments) > 1 {
				out = append(out, Violation{RuleInflexibleSingleFragment,
					fmt.Sprintf("layout %q has %d fragments", l.Name, len(l.Fragments))})
			}
		}
	}

	if c.Flexibility == WeakFlexible {
		for _, l := range snap.Layouts {
			if l.Combined {
				out = append(out, Violation{RuleWeakUniformPartitioning,
					fmt.Sprintf("layout %q combines vertical and horizontal partitioning", l.Name)})
			}
		}
	}

	if c.Adaptability == Responsive && !c.Flexibility.Flexible() {
		out = append(out, Violation{RuleResponsiveRequiresFlexible,
			"responsive adaptability on an inflexible engine"})
	}

	if (c.Working == LocMixed || c.Primary == LocMixed) && c.Locality != Distributed {
		out = append(out, Violation{RuleMixedImpliesDistributed,
			"mixed data location with centralized locality"})
	}
	if c.Locality == Centralized && c.Working == LocMixed {
		out = append(out, Violation{RuleMixedImpliesDistributed,
			"centralized locality requires a single-kind location"})
	}

	if c.Handling != SingleLayout && c.Scheme == SchemeNone {
		out = append(out, Violation{RuleMultiLayoutRequiresScheme,
			"multi-layout relation without replication or delegation scheme"})
	}

	for _, l := range snap.Layouts {
		for i, f := range l.Fragments {
			if f.Fat && f.Lin == layout.Direct {
				out = append(out, Violation{RuleDirectOnlyThin,
					fmt.Sprintf("layout %q fragment %d is fat but direct", l.Name, i)})
			}
		}
	}

	if c.Flexibility.Strong() {
		any := false
		for _, l := range snap.Layouts {
			if l.Combined {
				any = true
				break
			}
		}
		if !any {
			out = append(out, Violation{RuleStrongRequiresCombined,
				"strong flexibility claimed but no layout combines vertical and horizontal partitioning"})
		}
	}
	return out
}
