package taxonomy

import (
	"errors"
	"strings"
	"testing"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.Int64Attr("a"), schema.Int64Attr("b"),
		schema.Int64Attr("c"), schema.Int64Attr("d"),
	)
}

func host() *mem.Allocator { return mem.NewAllocator(mem.Host, 0) }

// snapPAX: one layout, horizontally chunked fat fragments, DSM-fixed.
func snapPAX(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	r := layout.NewRelation("R", s)
	l, err := layout.Horizontal(host(), "pages", s, 100, 32, layout.DSM)
	if err != nil {
		t.Fatal(err)
	}
	r.AddLayout(l)
	r.SetRows(100)
	return r.Digest()
}

// snapMirrors: two layouts, each one full-width fat fragment, NSM and DSM.
func snapMirrors(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	r := layout.NewRelation("R", s)
	for _, lin := range []layout.Linearization{layout.NSM, layout.DSM} {
		l := layout.NewLayout(lin.String(), s)
		f, err := layout.NewFragment(host(), s, layout.AllCols(s), layout.RowRange{Begin: 0, End: 100}, lin)
		if err != nil {
			t.Fatal(err)
		}
		l.Add(f)
		r.AddLayout(l)
	}
	return r.Digest()
}

// snapHyrise: one layout, vertical sub-relations with mixed linearization.
func snapHyrise(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	r := layout.NewRelation("R", s)
	l, err := layout.Vertical(host(), "containers", s, [][]int{{0, 1}, {2, 3}}, 100,
		func(g []int) layout.Linearization {
			if g[0] == 0 {
				return layout.NSM
			}
			return layout.DSM
		})
	if err != nil {
		t.Fatal(err)
	}
	r.AddLayout(l)
	return r.Digest()
}

// snapHyper: one layout, per-column thin vectors chunked horizontally
// (partition → chunk → vector): combined partitioning, all thin direct.
func snapHyper(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	r := layout.NewRelation("R", s)
	l := layout.NewLayout("chunks", s)
	for chunk := uint64(0); chunk < 2; chunk++ {
		for c := 0; c < s.Arity(); c++ {
			f, err := layout.NewFragment(host(), s, []int{c},
				layout.RowRange{Begin: chunk * 50, End: (chunk + 1) * 50}, layout.Direct)
			if err != nil {
				t.Fatal(err)
			}
			l.Add(f)
		}
	}
	r.AddLayout(l)
	return r.Digest()
}

// snapH2O: one layout, NSM-fixed fat chunks plus thin per-column fragments.
func snapH2O(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	r := layout.NewRelation("R", s)
	l := layout.NewLayout("h2o", s)
	fat, err := layout.NewFragment(host(), s, []int{0, 1, 2}, layout.RowRange{Begin: 0, End: 100}, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := layout.NewFragment(host(), s, []int{3}, layout.RowRange{Begin: 0, End: 100}, layout.Direct)
	if err != nil {
		t.Fatal(err)
	}
	l.Add(fat)
	l.Add(thin)
	r.AddLayout(l)
	return r.Digest()
}

// snapMixedSpace: thin columns split between host and device (CoGaDB).
func snapMixedSpace(t *testing.T) layout.Snapshot {
	t.Helper()
	s := testSchema()
	dev := mem.NewAllocator(mem.Device, 1<<20)
	r := layout.NewRelation("R", s)
	l := layout.NewLayout("host", s)
	ld := layout.NewLayout("device", s)
	for c := 0; c < s.Arity(); c++ {
		f, err := layout.NewFragment(host(), s, []int{c}, layout.RowRange{Begin: 0, End: 100}, layout.Direct)
		if err != nil {
			t.Fatal(err)
		}
		l.Add(f)
	}
	fd, err := layout.NewFragment(dev, s, []int{3}, layout.RowRange{Begin: 0, End: 100}, layout.Direct)
	if err != nil {
		t.Fatal(err)
	}
	ld.Add(fd)
	r.AddLayout(l)
	r.AddLayout(ld)
	return r.Digest()
}

func TestClassifyPAXArchetype(t *testing.T) {
	c, err := Classify("PAX", snapPAX(t), Capabilities{
		FixedFragmentation: true,
		Processors:         CPUOnly,
		Workloads:          HTAP,
		PrimaryDeclared:    LocSecondary,
		HasPrimaryDeclared: true,
		Year:               2002,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Handling != SingleLayout {
		t.Errorf("Handling = %v", c.Handling)
	}
	if c.Flexibility != Inflexible {
		t.Errorf("Flexibility = %v", c.Flexibility)
	}
	if c.Adaptability != Static {
		t.Errorf("Adaptability = %v", c.Adaptability)
	}
	if c.Working != LocHost || c.Primary != LocSecondary || c.Locality != Centralized {
		t.Errorf("location = %v/%v/%v", c.Working, c.Primary, c.Locality)
	}
	if c.Linearization != FatDSMFixed {
		t.Errorf("Linearization = %v", c.Linearization)
	}
	if c.Scheme != SchemeNone {
		t.Errorf("Scheme = %v", c.Scheme)
	}
	if v := Validate(c, snapPAX(t), Capabilities{FixedFragmentation: true}); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestClassifyMirrorsArchetype(t *testing.T) {
	caps := Capabilities{
		BuiltInMultiLayout: true,
		Scheme:             SchemeReplication,
		Processors:         CPUOnly,
		Workloads:          HTAP,
		Year:               2002,
	}
	c, err := Classify("Fractured Mirrors", snapMirrors(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Handling != MultiLayoutBuiltIn {
		t.Errorf("Handling = %v", c.Handling)
	}
	if c.Flexibility != Inflexible {
		t.Errorf("Flexibility = %v (one fragment per layout)", c.Flexibility)
	}
	if c.Linearization != FatNSMPlusDSMFixed {
		t.Errorf("Linearization = %v", c.Linearization)
	}
	if c.Scheme != SchemeReplication {
		t.Errorf("Scheme = %v", c.Scheme)
	}
	if v := Validate(c, snapMirrors(t), caps); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestClassifyHyriseArchetype(t *testing.T) {
	caps := Capabilities{
		Responsive:            true,
		VariableLinearization: true,
		Processors:            CPUOnly,
		Workloads:             HTAP,
		Year:                  2010,
	}
	c, err := Classify("HYRISE", snapHyrise(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Handling != SingleLayout || c.Flexibility != WeakFlexible || c.Adaptability != Responsive {
		t.Errorf("got %v/%v/%v", c.Handling, c.Flexibility, c.Adaptability)
	}
	if c.Linearization != FatVariable {
		t.Errorf("Linearization = %v", c.Linearization)
	}
	if v := Validate(c, snapHyrise(t), caps); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestClassifyHyperArchetype(t *testing.T) {
	caps := Capabilities{Responsive: true, Processors: CPUOnly, Workloads: HTAP, Year: 2015}
	c, err := Classify("HyPer", snapHyper(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Flexibility != StrongFlexibleConstrained {
		t.Errorf("Flexibility = %v", c.Flexibility)
	}
	if c.Linearization != ThinDSMEmulated {
		t.Errorf("Linearization = %v", c.Linearization)
	}
	if v := Validate(c, snapHyper(t), caps); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestClassifyH2OArchetype(t *testing.T) {
	caps := Capabilities{Responsive: true, Processors: CPUOnly, Workloads: HTAP, Year: 2014}
	c, err := Classify("H2O", snapH2O(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Linearization != VarNSMFixedPartDSMEmulated {
		t.Errorf("Linearization = %v", c.Linearization)
	}
	if c.Flexibility != WeakFlexible {
		t.Errorf("Flexibility = %v", c.Flexibility)
	}
}

func TestClassifyMixedSpace(t *testing.T) {
	caps := Capabilities{
		BuiltInMultiLayout: true,
		Scheme:             SchemeReplication,
		Processors:         CPUAndGPU,
		Workloads:          OLAP,
		Year:               2016,
	}
	c, err := Classify("CoGaDB", snapMixedSpace(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Working != LocMixed || c.Locality != Distributed {
		t.Errorf("location = %v/%v", c.Working, c.Locality)
	}
	if c.Linearization != ThinDSMEmulated {
		t.Errorf("Linearization = %v", c.Linearization)
	}
}

func TestClassifyClusterDistributed(t *testing.T) {
	caps := Capabilities{ClusterDistributed: true}
	c, err := Classify("ES2", snapPAX(t), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Locality != Distributed {
		t.Errorf("cluster-distributed engine classified %v", c.Locality)
	}
}

func TestClassifyEmulatedMultiLayout(t *testing.T) {
	c, err := Classify("X", snapMirrors(t), Capabilities{Scheme: SchemeReplication})
	if err != nil {
		t.Fatal(err)
	}
	if c.Handling != MultiLayoutEmulated {
		t.Errorf("Handling = %v, want emulated", c.Handling)
	}
}

func TestClassifyUnconstrainedStrong(t *testing.T) {
	c, err := Classify("X", snapHyper(t), Capabilities{Unconstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Flexibility != StrongFlexibleUnconstrained {
		t.Errorf("Flexibility = %v", c.Flexibility)
	}
}

func TestClassifyResponsiveRequiresFlexible(t *testing.T) {
	// An inflexible engine claiming responsiveness is classified static.
	c, err := Classify("X", snapPAX(t), Capabilities{FixedFragmentation: true, Responsive: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Adaptability != Static {
		t.Errorf("Adaptability = %v, want static", c.Adaptability)
	}
}

func TestClassifyNoEvidence(t *testing.T) {
	if _, err := Classify("X", layout.Snapshot{Relation: "R"}, Capabilities{}); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("err = %v, want ErrNoEvidence", err)
	}
	empty := layout.Snapshot{Relation: "R", Layouts: []layout.LayoutInfo{{Name: "l"}}}
	if _, err := Classify("X", empty, Capabilities{}); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("empty layouts err = %v, want ErrNoEvidence", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	snap := snapHyrise(t) // 2 fragments per layout
	// Claim inflexible without the PAX waiver: violation.
	c := Classification{Flexibility: Inflexible}
	found := false
	for _, v := range Validate(c, snap, Capabilities{}) {
		if v.Rule == RuleInflexibleSingleFragment {
			found = true
		}
	}
	if !found {
		t.Error("inflexible-single-fragment not caught")
	}

	// Weak flexible with a combined layout: violation.
	c = Classification{Flexibility: WeakFlexible}
	found = false
	for _, v := range Validate(c, snapHyper(t), Capabilities{}) {
		if v.Rule == RuleWeakUniformPartitioning {
			found = true
		}
	}
	if !found {
		t.Error("weak-uniform-partitioning not caught")
	}

	// Responsive + inflexible: violation.
	c = Classification{Flexibility: Inflexible, Adaptability: Responsive}
	found = false
	for _, v := range Validate(c, snapPAX(t), Capabilities{FixedFragmentation: true}) {
		if v.Rule == RuleResponsiveRequiresFlexible {
			found = true
		}
	}
	if !found {
		t.Error("responsive-requires-flexible not caught")
	}

	// Mixed location + centralized locality: violation.
	c = Classification{Working: LocMixed, Locality: Centralized}
	found = false
	for _, v := range Validate(c, snapPAX(t), Capabilities{FixedFragmentation: true}) {
		if v.Rule == RuleMixedImpliesDistributed {
			found = true
		}
	}
	if !found {
		t.Error("mixed-implies-distributed not caught")
	}

	// Multi-layout without scheme: violation.
	c = Classification{Handling: MultiLayoutBuiltIn, Scheme: SchemeNone}
	found = false
	for _, v := range Validate(c, snapMirrors(t), Capabilities{}) {
		if v.Rule == RuleMultiLayoutRequiresScheme {
			found = true
		}
	}
	if !found {
		t.Error("multi-layout-requires-scheme not caught")
	}

	// Strong without combined structural evidence: violation.
	c = Classification{Flexibility: StrongFlexibleConstrained}
	found = false
	for _, v := range Validate(c, snapHyrise(t), Capabilities{}) {
		if v.Rule == RuleStrongRequiresCombined {
			found = true
		}
	}
	if !found {
		t.Error("strong-requires-combined not caught")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: RuleDirectOnlyThin, Detail: "x"}
	if got := v.String(); got != "direct-only-thin: x" {
		t.Errorf("String() = %q", got)
	}
}

func TestClassifyIsDeterministic(t *testing.T) {
	snap := snapHyper(t)
	caps := Capabilities{Responsive: true, Workloads: HTAP}
	a, err := Classify("X", snap, caps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Classify("X", snap, caps)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRenderTableOrdersByYear(t *testing.T) {
	rows := []Classification{
		{Name: "B", Year: 2016},
		{Name: "A", Year: 2002},
		{Name: "C", Year: 2016},
	}
	out := RenderTable(rows)
	ia, ib, ic := strings.Index(out, "\nA "), strings.Index(out, "\nB "), strings.Index(out, "\nC ")
	if !(ia < ib && ib < ic) {
		t.Errorf("order wrong:\n%s", out)
	}
	if !strings.Contains(out, "Layout handling") {
		t.Error("header missing")
	}
}

func TestLocationCell(t *testing.T) {
	cases := []struct {
		c    Classification
		want string
	}{
		{Classification{Working: LocHost, Primary: LocSecondary, Locality: Centralized}, "host+secondary centr."},
		{Classification{Working: LocHost, Primary: LocHost, Locality: Centralized}, "host centr."},
		{Classification{Working: LocDevice, Primary: LocDevice, Locality: Centralized}, "device centr."},
		{Classification{Working: LocMixed, Primary: LocMixed, Locality: Distributed}, "mixed distr."},
	}
	for _, c := range cases {
		if got := locationCell(c.c); got != c.want {
			t.Errorf("locationCell = %q, want %q", got, c.want)
		}
	}
}

func TestTreeContainsAllFigure4Leaves(t *testing.T) {
	leaves := Tree().Leaves()
	want := []string{
		"Single Layout", "Built-In", "Emulated", "Inflexible", "Weak",
		"Constrained", "Unconstrained", "Static", "Responsive",
		"Host-Memory-Only", "Device-Memory-Only", "Mixed",
		"Centralized", "Distributed", "NSM-Fixed", "DSM-Fixed", "Variable",
		"Direct Linearization", "NSM", "DSM",
		"DSM-Fixed Partially NSM-Emulated", "NSM-Fixed Partially DSM-Emulated",
		"Replication-Based", "Delegation-Based",
	}
	have := make(map[string]bool, len(leaves))
	for _, l := range leaves {
		have[l] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("leaf %q missing from taxonomy tree", w)
		}
	}
}

func TestTreeRender(t *testing.T) {
	out := Tree().Render()
	for _, want := range []string{"Storage Engine", "├─ Layout Handling", "└─ Fragment Scheme", "│  "} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTreeWalkDepths(t *testing.T) {
	maxDepth := 0
	count := 0
	Tree().Walk(func(n Node, d int) {
		count++
		if d > maxDepth {
			maxDepth = d
		}
	})
	if maxDepth < 4 {
		t.Errorf("max depth = %d, want >= 4 (Fig. 4 has 5 levels)", maxDepth)
	}
	if count < 30 {
		t.Errorf("node count = %d, want >= 30", count)
	}
}

func TestPropertyStringsCoverUnknown(t *testing.T) {
	if LayoutHandling(9).String() == "" || LayoutFlexibility(9).String() == "" ||
		LayoutAdaptability(9).String() == "" || LocationKind(9).String() == "" ||
		Locality(9).String() == "" || LinearizationClass(99).String() == "" ||
		FragmentScheme(9).String() == "" || ProcessorSupport(9).String() == "" ||
		WorkloadSupport(9).String() == "" {
		t.Error("some unknown-value String() is empty")
	}
}

func TestFlexibilityPredicates(t *testing.T) {
	if Inflexible.Flexible() || !WeakFlexible.Flexible() {
		t.Error("Flexible() broken")
	}
	if WeakFlexible.Strong() || !StrongFlexibleConstrained.Strong() || !StrongFlexibleUnconstrained.Strong() {
		t.Error("Strong() broken")
	}
}
