// Package taxonomy implements the classification properties and taxonomy
// of storage engines from Section III of the paper, the structural
// classifier that derives a classification from live layout snapshots, the
// consistency rules implied by the paper's definitions, and renderers for
// the survey table (Table 1) and the taxonomy tree (Figure 4).
package taxonomy

import "fmt"

// LayoutHandling states how many simultaneous layouts a relation may have
// and whether multi-layout support is native or emulated via same-named
// replicated relations.
type LayoutHandling uint8

// Layout handling values.
const (
	// SingleLayout limits a relation to exactly one layout.
	SingleLayout LayoutHandling = iota
	// MultiLayoutBuiltIn supports multiple alternative layouts natively.
	MultiLayoutBuiltIn
	// MultiLayoutEmulated emulates multiple layouts by holding replicated
	// relations under the same name.
	MultiLayoutEmulated
)

// String renders the value as it appears in Table 1.
func (v LayoutHandling) String() string {
	switch v {
	case SingleLayout:
		return "single"
	case MultiLayoutBuiltIn:
		return "built-in multi"
	case MultiLayoutEmulated:
		return "emulated multi"
	default:
		return fmt.Sprintf("LayoutHandling(%d)", uint8(v))
	}
}

// LayoutFlexibility states how a layout may be divided into fragments.
type LayoutFlexibility uint8

// Layout flexibility values.
const (
	// Inflexible supports only one fragment per layout.
	Inflexible LayoutFlexibility = iota
	// WeakFlexible layouts apply one partitioning technique (vertical or
	// horizontal) to define fragments.
	WeakFlexible
	// StrongFlexibleConstrained layouts combine vertical and horizontal
	// partitioning, but fragment definitions have side-effects on
	// adjacent fragments or a pre-defined partitioning order.
	StrongFlexibleConstrained
	// StrongFlexibleUnconstrained layouts combine both partitioning
	// techniques without such side-effects.
	StrongFlexibleUnconstrained
)

// String renders the value as it appears in Table 1.
func (v LayoutFlexibility) String() string {
	switch v {
	case Inflexible:
		return "inflexible"
	case WeakFlexible:
		return "weak flexible"
	case StrongFlexibleConstrained:
		return "strong flexible (constrained)"
	case StrongFlexibleUnconstrained:
		return "strong flexible (unconstrained)"
	default:
		return fmt.Sprintf("LayoutFlexibility(%d)", uint8(v))
	}
}

// Strong reports whether the flexibility is one of the strong variants.
func (v LayoutFlexibility) Strong() bool {
	return v == StrongFlexibleConstrained || v == StrongFlexibleUnconstrained
}

// Flexible reports whether the engine supports more than one fragment per
// layout at all.
func (v LayoutFlexibility) Flexible() bool { return v != Inflexible }

// LayoutAdaptability states whether layouts re-organize in response to
// workload changes at runtime.
type LayoutAdaptability uint8

// Layout adaptability values.
const (
	// Static layouts never re-organize (also forced for inflexible engines).
	Static LayoutAdaptability = iota
	// Responsive layouts adapt fragments to observed workload changes.
	Responsive
)

// String renders the value as it appears in Table 1.
func (v LayoutAdaptability) String() string {
	switch v {
	case Static:
		return "static"
	case Responsive:
		return "responsive"
	default:
		return fmt.Sprintf("LayoutAdaptability(%d)", uint8(v))
	}
}

// LocationKind names where tuplets are stored, following the paper's data
// location property.
type LocationKind uint8

// Location kinds.
const (
	// LocHost is host-main-memory-only.
	LocHost LocationKind = iota
	// LocDevice is device-memory-only.
	LocDevice
	// LocSecondary is secondary-storage-only (disk/flash).
	LocSecondary
	// LocMixed spans more than one memory kind.
	LocMixed
)

// String renders the value as it appears in Table 1.
func (v LocationKind) String() string {
	switch v {
	case LocHost:
		return "host"
	case LocDevice:
		return "device"
	case LocSecondary:
		return "secondary"
	case LocMixed:
		return "mixed"
	default:
		return fmt.Sprintf("LocationKind(%d)", uint8(v))
	}
}

// Locality is derived from the data location: centralized for single-kind
// locations, distributed for mixed ones.
type Locality uint8

// Locality values.
const (
	// Centralized data lives in exactly one memory kind.
	Centralized Locality = iota
	// Distributed data spans memory kinds (or cluster nodes).
	Distributed
)

// String renders the value as it appears in Table 1.
func (v Locality) String() string {
	switch v {
	case Centralized:
		return "centralized"
	case Distributed:
		return "distributed"
	default:
		return fmt.Sprintf("Locality(%d)", uint8(v))
	}
}

// LinearizationClass is the engine-level fragment linearization property
// (Section III, "Fragment linearization properties"), the refinement of
// per-fragment NSM/DSM/direct into the paper's engine-level vocabulary.
type LinearizationClass uint8

// Linearization classes.
const (
	// FatNSMFixed stores fat fragments, always row-major.
	FatNSMFixed LinearizationClass = iota
	// FatDSMFixed stores fat fragments, always column-major.
	FatDSMFixed
	// FatNSMPlusDSMFixed keeps NSM-fixed and DSM-fixed fat copies side by
	// side (Fractured Mirrors).
	FatNSMPlusDSMFixed
	// FatVariable stores fat fragments in either order, per fragment.
	FatVariable
	// ThinNSMEmulated emulates NSM via thin one-row fragments with direct
	// linearization.
	ThinNSMEmulated
	// ThinDSMEmulated emulates DSM via thin per-column fragments with
	// direct linearization.
	ThinDSMEmulated
	// VarNSMFixedPartDSMEmulated mixes NSM-fixed fat fragments with
	// DSM-emulated thin ones (H₂O).
	VarNSMFixedPartDSMEmulated
	// VarDSMFixedPartNSMEmulated mixes DSM-fixed fat fragments with
	// NSM-emulated thin ones.
	VarDSMFixedPartNSMEmulated
)

// String renders the value as it appears in Table 1.
func (v LinearizationClass) String() string {
	switch v {
	case FatNSMFixed:
		return "fat, NSM-fixed"
	case FatDSMFixed:
		return "fat, DSM-fixed"
	case FatNSMPlusDSMFixed:
		return "fat, NSM+DSM-fixed"
	case FatVariable:
		return "fat, variable"
	case ThinNSMEmulated:
		return "thin, NSM-emulated"
	case ThinDSMEmulated:
		return "thin, DSM-emulated"
	case VarNSMFixedPartDSMEmulated:
		return "variable NSM-fixed partially DSM-emulated"
	case VarDSMFixedPartNSMEmulated:
		return "variable DSM-fixed partially NSM-emulated"
	default:
		return fmt.Sprintf("LinearizationClass(%d)", uint8(v))
	}
}

// FragmentScheme states how multi-layout engines keep tuplets coherent
// across the layouts of a relation.
type FragmentScheme uint8

// Fragment schemes.
const (
	// SchemeNone applies to single-layout engines.
	SchemeNone FragmentScheme = iota
	// SchemeReplication holds per-layout copies of tuplets.
	SchemeReplication
	// SchemeDelegation stores some tuplets exclusively in certain layouts
	// and routes access via delegation policies.
	SchemeDelegation
)

// String renders the value as it appears in Table 1.
func (v FragmentScheme) String() string {
	switch v {
	case SchemeNone:
		return "-"
	case SchemeReplication:
		return "replication"
	case SchemeDelegation:
		return "delegated"
	default:
		return fmt.Sprintf("FragmentScheme(%d)", uint8(v))
	}
}

// ProcessorSupport states which compute platforms the engine targets.
type ProcessorSupport uint8

// Processor support values.
const (
	// CPUOnly engines run on the host processor only.
	CPUOnly ProcessorSupport = iota
	// GPUOnly engines run on the device processor only.
	GPUOnly
	// CPUAndGPU engines cooperate across both.
	CPUAndGPU
)

// String renders the value as it appears in Table 1.
func (v ProcessorSupport) String() string {
	switch v {
	case CPUOnly:
		return "CPU"
	case GPUOnly:
		return "GPU"
	case CPUAndGPU:
		return "CPU/GPU"
	default:
		return fmt.Sprintf("ProcessorSupport(%d)", uint8(v))
	}
}

// WorkloadSupport states which workload mix the engine is designed for.
type WorkloadSupport uint8

// Workload support values.
const (
	// OLTP is transaction processing.
	OLTP WorkloadSupport = iota
	// OLAP is analytic processing.
	OLAP
	// HTAP is hybrid transactional/analytical processing.
	HTAP
)

// String renders the value as it appears in Table 1.
func (v WorkloadSupport) String() string {
	switch v {
	case OLTP:
		return "OLTP"
	case OLAP:
		return "OLAP"
	case HTAP:
		return "HTAP"
	default:
		return fmt.Sprintf("WorkloadSupport(%d)", uint8(v))
	}
}

// Classification is one row of the paper's Table 1: the full set of
// property values for one storage engine.
type Classification struct {
	// Name is the engine name as printed in the survey.
	Name string
	// Handling is the layout handling property.
	Handling LayoutHandling
	// Flexibility is the layout flexibility property.
	Flexibility LayoutFlexibility
	// Adaptability is the layout adaptability property.
	Adaptability LayoutAdaptability
	// Working is where the working set lives.
	Working LocationKind
	// Primary is where the primary (authoritative) copy lives.
	Primary LocationKind
	// Locality is derived from Working/Primary.
	Locality Locality
	// Linearization is the engine-level linearization class.
	Linearization LinearizationClass
	// Scheme is the fragment scheme for multi-layout coherence.
	Scheme FragmentScheme
	// Processors is the targeted compute platform set.
	Processors ProcessorSupport
	// Workloads is the targeted workload mix.
	Workloads WorkloadSupport
	// Year is the publication year (for table ordering).
	Year int
}
