package taxonomy

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTable formats classifications as the paper's Table 1: one row per
// engine, ordered by publication year then name, with the survey's column
// set. The output is a fixed-width text table suitable for terminals and
// for golden-file comparison in tests.
func RenderTable(rows []Classification) string {
	sorted := append([]Classification(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Year != sorted[j].Year {
			return sorted[i].Year < sorted[j].Year
		}
		return sorted[i].Name < sorted[j].Name
	})

	header := []string{
		"Engine", "Layout handling", "Layout flexibility", "Layout adaptability",
		"Data location", "Fragment linearization", "Fragment scheme",
		"Processor", "Workload", "Year",
	}
	table := [][]string{header}
	for _, c := range sorted {
		table = append(table, []string{
			c.Name,
			c.Handling.String(),
			c.Flexibility.String(),
			c.Adaptability.String(),
			locationCell(c),
			c.Linearization.String(),
			c.Scheme.String(),
			c.Processors.String(),
			c.Workloads.String(),
			fmt.Sprintf("%d", c.Year),
		})
	}

	widths := make([]int, len(header))
	for _, row := range table {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for r, row := range table {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		if r == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// locationCell renders the Table-1 "Data location" column: working space,
// primary space, and the derived locality (e.g. "host+secondary centr.").
func locationCell(c Classification) string {
	loc := c.Working.String()
	if c.Primary != c.Working {
		loc += "+" + c.Primary.String()
	}
	switch c.Locality {
	case Centralized:
		return loc + " centr."
	default:
		return loc + " distr."
	}
}
