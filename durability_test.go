package hybridstore

import (
	"fmt"
	"math"
	"testing"

	"hybridstore/internal/obs"
)

func durableSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Int64Attr("id"),
		CharAttr("name", 8),
		Float64Attr("balance"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkAccounts asserts the table holds rows records with balance
// row*10, except rows listed in patched which hold the patched value.
func checkAccounts(t *testing.T, tbl *Table, rows uint64, patched map[uint64]float64) {
	t.Helper()
	if tbl.Rows() != rows {
		t.Fatalf("rows = %d, want %d", tbl.Rows(), rows)
	}
	var want float64
	for i := uint64(0); i < rows; i++ {
		if v, ok := patched[i]; ok {
			want += v
		} else {
			want += float64(i) * 10
		}
	}
	sum, err := tbl.SumFloat64(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	for i := uint64(0); i < rows; i += 97 {
		rec, err := tbl.GetByPK(int64(i))
		if err != nil {
			t.Fatalf("pk %d: %v", i, err)
		}
		want := float64(i) * 10
		if v, ok := patched[i]; ok {
			want = v
		}
		if rec[2].F != want {
			t.Fatalf("pk %d balance = %v, want %v", i, rec[2].F, want)
		}
	}
}

// TestDurableRoundTrip closes a durable DB and reopens it: every
// acknowledged insert, update and transactional commit must be there.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkRows: 64, HotChunks: 1}

	db, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", durableSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(Record{
			IntValue(int64(i)), CharValue("acct"), FloatValue(float64(i) * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	patched := map[uint64]float64{}
	for i := uint64(0); i < 300; i += 10 {
		if err := tbl.Update(i, 2, FloatValue(-1)); err != nil {
			t.Fatal(err)
		}
		patched[i] = -1
	}
	// A multi-operation transaction on top.
	x := tbl.Begin()
	if err := x.Update(5, 2, FloatValue(555)); err != nil {
		t.Fatal(err)
	}
	if err := x.Update(7, 2, FloatValue(777)); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	patched[5], patched[7] = 555, 777
	checkAccounts(t, tbl, 300, patched)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rt := re.Table("accounts")
	if rt == nil {
		t.Fatal("accounts not recovered")
	}
	checkAccounts(t, rt, 300, patched)
	// The recovered DB keeps working and stays durable.
	if _, err := rt.Insert(Record{IntValue(300), CharValue("acct"), FloatValue(3000)}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	checkAccounts(t, re2.Table("accounts"), 301, patched)
}

// TestDurableCheckpoint verifies checkpoint + truncation: recovery
// restores the image, replays only the records past it, and a crash
// between image publication and log truncation (simulated by
// checkpointing without compaction being interrupted — the image
// covers records still in the log) stays consistent.
func TestDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkRows: 64, HotChunks: 1, Compress: true}

	db, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", durableSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := tbl.Insert(Record{
			IntValue(int64(i)), CharValue("acct"), FloatValue(float64(i) * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	patched := map[uint64]float64{}
	for i := uint64(0); i < 256; i += 16 {
		if err := tbl.Update(i, 2, FloatValue(float64(i))); err != nil {
			t.Fatal(err)
		}
		patched[i] = float64(i)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes live only in the truncated log.
	for i := 256; i < 320; i++ {
		if _, err := tbl.Insert(Record{
			IntValue(int64(i)), CharValue("acct"), FloatValue(float64(i) * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Update(300, 2, FloatValue(9)); err != nil {
		t.Fatal(err)
	}
	patched[300] = 9
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkAccounts(t, re.Table("accounts"), 320, patched)
}

// TestWarmRestartZeroReseals: restoring a checkpoint must not re-seal
// a single zone map — the image carries the sealed snapshots, so a
// warm restart pays zero zone-recomputation scans and the restored
// zones still prune queries exactly as before the restart.
func TestWarmRestartZeroReseals(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkRows: 64, HotChunks: 1, Compress: true}
	db, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", durableSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := tbl.Insert(Record{
			IntValue(int64(i)), CharValue("acct"), FloatValue(float64(i) * 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Adapt(); err != nil { // freeze → seal the cold zones
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	sealsBefore := obs.TakeSnapshot().Counter("layout.seals")
	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if sealsAfter := obs.TakeSnapshot().Counter("layout.seals"); sealsAfter != sealsBefore {
		t.Fatalf("warm restart re-sealed %d zone maps, want 0", sealsAfter-sealsBefore)
	}

	// The restored sealed zones still prune: a predicate outside every
	// cold fragment's bounds must skip them without touching bytes.
	prunedBefore := obs.TakeSnapshot().Counter("exec.zonemap.pruned")
	sum, n, err := re.Table("accounts").SumFloat64Where(2, GtFloat(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0 || n != 0 {
		t.Fatalf("impossible predicate matched sum=%v n=%d", sum, n)
	}
	if prunedAfter := obs.TakeSnapshot().Counter("exec.zonemap.pruned"); prunedAfter == prunedBefore {
		t.Fatal("restored zones pruned nothing — seals were lost in the round trip")
	}
}

// TestDurableOptIn: tables outside Durability.Tables stay memory-only.
func TestDurableOptIn(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Durability: Durability{Tables: []string{"keep"}}}

	db, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := durableSchema(t)
	keep, err := db.CreateTable("keep", s)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := db.CreateTable("drop", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := Record{IntValue(int64(i)), CharValue("x"), FloatValue(float64(i) * 10)}
		if _, err := keep.Insert(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := drop.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Table("drop") != nil {
		t.Fatal("memory-only table recovered")
	}
	checkAccounts(t, re.Table("keep"), 10, nil)
}

// TestCheckpointMemoryOnly: Checkpoint on an Open'd DB reports misuse.
func TestCheckpointMemoryOnly(t *testing.T) {
	db := Open(Options{})
	if err := db.Checkpoint(); err == nil {
		t.Fatal("expected an error")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableConcurrentWriters hammers a durable table from many
// goroutines and reopens: row count and content must match what was
// acknowledged.
func TestDurableConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	opts := Options{ChunkRows: 64}
	db, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", durableSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				_, err := tbl.Insert(Record{
					IntValue(int64(w*perWriter + i)), CharValue("acct"), FloatValue(1),
				})
				if err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rt := re.Table("accounts")
	if rt.Rows() != writers*perWriter {
		t.Fatalf("rows = %d, want %d", rt.Rows(), writers*perWriter)
	}
	sum, err := rt.SumFloat64(2)
	if err != nil || sum != writers*perWriter {
		t.Fatalf("sum = %v (%v), want %d", sum, err, writers*perWriter)
	}
	for pk := int64(0); pk < writers*perWriter; pk++ {
		if _, ok := rt.LookupPK(pk); !ok {
			t.Fatalf("pk %d lost", pk)
		}
	}
}
