package hybridstore

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/workload"
)

// TestConcurrentHTAPStress drives the reference engine with concurrent
// transactional writers, point readers, analytic scanners, inserters and
// a background adaptor/merger — the paper's HTAP picture, all at once.
// Run under -race this validates the engine's concurrency contract; the
// final state must equal a sequential model.
func TestConcurrentHTAPStress(t *testing.T) {
	db := Open(Options{ChunkRows: 256, HotChunks: 2})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	const base = 2000
	for i := uint64(0); i < base; i++ {
		if _, err := tbl.Insert(Item(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	model := map[uint64]float64{}
	for i := uint64(0); i < base; i++ {
		model[i] = workload.ItemPrice(i)
	}
	inserted := uint64(base)

	// Writers: single-op update transactions against the base region.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				row := uint64(r.Int63n(base))
				val := math.Floor(r.Float64() * 100)
				if err := tbl.Update(row, ItemPriceColumn, FloatValue(val)); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				model[row] = val
				mu.Unlock()
			}
		}(w)
	}

	// Readers: point reads and Q1 lookups must always see a coherent
	// record (generated shape, whatever the price currently is).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 300; i++ {
				row := uint64(r.Int63n(base))
				rec, err := tbl.Get(row)
				if err != nil {
					t.Error(err)
					return
				}
				if rec[0].I != int64(row) {
					t.Errorf("row %d materialized id %d", row, rec[0].I)
					return
				}
				if _, err := tbl.GetByPK(int64(row)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Scanners: aggregates run throughout (answers vary while writers
	// run; they only must not error, race or crash).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := tbl.SumFloat64(ItemPriceColumn); err != nil {
					t.Error(err)
					return
				}
				if _, err := tbl.GroupSumFloat64(1, ItemPriceColumn); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// An inserter extends the relation (rows ≥ base, untouched by
	// writers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 500; i++ {
			row := base + i
			if _, err := tbl.Insert(Item(row)); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			model[row] = workload.ItemPrice(row)
			inserted++
			mu.Unlock()
		}
	}()

	// A background maintainer adapts and merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := tbl.Adapt(); err != nil {
				t.Error(err)
				return
			}
			if err := tbl.Merge(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: the table equals the model.
	if tbl.Rows() != inserted {
		t.Fatalf("rows = %d, want %d", tbl.Rows(), inserted)
	}
	var want float64
	for _, v := range model {
		want += v
	}
	got, err := tbl.SumFloat64(ItemPriceColumn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("final sum = %v, want %v", got, want)
	}
	for probe := uint64(0); probe < inserted; probe += 97 {
		rec, err := tbl.Get(probe)
		if err != nil || rec[ItemPriceColumn].F != model[probe] {
			t.Fatalf("Get(%d) = %v, %v; want price %v", probe, rec, err, model[probe])
		}
	}
}

// TestConcurrentMorselPoolStress hammers the process-wide morsel pool
// from several independent DBs at once: every engine routes its analytic
// operators through the same resident workers and recycled buffers, so
// concurrent queries across databases must neither race nor cross-feed
// results. Run under -race this validates the pool's sharing contract.
func TestConcurrentMorselPoolStress(t *testing.T) {
	// Small morsels force real multi-morsel scheduling on this machine;
	// extra workers force cross-query stealing.
	pool.SetMorselSize(128)
	pool.SetWorkers(4)
	t.Cleanup(func() {
		pool.SetMorselSize(0)
		pool.SetWorkers(0)
	})

	const dbs, rows = 3, 3000
	type fixture struct {
		tbl  *Table
		want float64
	}
	fixtures := make([]fixture, dbs)
	for d := range fixtures {
		db := Open(Options{ChunkRows: 256, HotChunks: 2, Policy: MorselDriven})
		tbl, err := db.CreateTable("item", ItemSchema())
		if err != nil {
			t.Fatal(err)
		}
		defer tbl.Free()
		// Distinct data per DB: shift the generator so a buffer leaking
		// across queries produces a visibly wrong sum.
		shift := uint64(d * 100_000)
		for i := uint64(0); i < rows; i++ {
			if _, err := tbl.Insert(Item(shift + i)); err != nil {
				t.Fatal(err)
			}
			fixtures[d].want += workload.ItemPrice(shift + i)
		}
		fixtures[d].tbl = tbl
	}

	// Churn the pool size while the queries run: in-flight jobs keep the
	// slot bound they were submitted with, so resizing must stay safe.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		sizes := []int{2, 4, 1, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				pool.SetWorkers(sizes[i%len(sizes)])
			}
		}
	}()

	var wg sync.WaitGroup
	for d := range fixtures {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(d, w int) {
				defer wg.Done()
				f := fixtures[d]
				r := rand.New(rand.NewSource(int64(d*10 + w)))
				for i := 0; i < 30; i++ {
					got, err := f.tbl.SumFloat64(ItemPriceColumn)
					if err != nil {
						t.Error(err)
						return
					}
					if math.Abs(got-f.want) > 1e-6 {
						t.Errorf("db %d: concurrent sum = %v, want %v", d, got, f.want)
						return
					}
					groups, err := f.tbl.GroupSumFloat64(1, ItemPriceColumn)
					if err != nil || len(groups) == 0 {
						t.Errorf("db %d: group sum = %v, %v", d, groups, err)
						return
					}
					row := uint64(r.Int63n(rows))
					if _, err := f.tbl.Get(row); err != nil {
						t.Error(err)
						return
					}
				}
			}(d, w)
		}
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}
