package hybridstore

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hybridstore/internal/workload"
)

// TestConcurrentHTAPStress drives the reference engine with concurrent
// transactional writers, point readers, analytic scanners, inserters and
// a background adaptor/merger — the paper's HTAP picture, all at once.
// Run under -race this validates the engine's concurrency contract; the
// final state must equal a sequential model.
func TestConcurrentHTAPStress(t *testing.T) {
	db := Open(Options{ChunkRows: 256, HotChunks: 2})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	const base = 2000
	for i := uint64(0); i < base; i++ {
		if _, err := tbl.Insert(Item(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	model := map[uint64]float64{}
	for i := uint64(0); i < base; i++ {
		model[i] = workload.ItemPrice(i)
	}
	inserted := uint64(base)

	// Writers: single-op update transactions against the base region.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				row := uint64(r.Int63n(base))
				val := math.Floor(r.Float64() * 100)
				if err := tbl.Update(row, ItemPriceColumn, FloatValue(val)); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				model[row] = val
				mu.Unlock()
			}
		}(w)
	}

	// Readers: point reads and Q1 lookups must always see a coherent
	// record (generated shape, whatever the price currently is).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 300; i++ {
				row := uint64(r.Int63n(base))
				rec, err := tbl.Get(row)
				if err != nil {
					t.Error(err)
					return
				}
				if rec[0].I != int64(row) {
					t.Errorf("row %d materialized id %d", row, rec[0].I)
					return
				}
				if _, err := tbl.GetByPK(int64(row)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Scanners: aggregates run throughout (answers vary while writers
	// run; they only must not error, race or crash).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := tbl.SumFloat64(ItemPriceColumn); err != nil {
					t.Error(err)
					return
				}
				if _, err := tbl.GroupSumFloat64(1, ItemPriceColumn); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// An inserter extends the relation (rows ≥ base, untouched by
	// writers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 500; i++ {
			row := base + i
			if _, err := tbl.Insert(Item(row)); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			model[row] = workload.ItemPrice(row)
			inserted++
			mu.Unlock()
		}
	}()

	// A background maintainer adapts and merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := tbl.Adapt(); err != nil {
				t.Error(err)
				return
			}
			if err := tbl.Merge(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: the table equals the model.
	if tbl.Rows() != inserted {
		t.Fatalf("rows = %d, want %d", tbl.Rows(), inserted)
	}
	var want float64
	for _, v := range model {
		want += v
	}
	got, err := tbl.SumFloat64(ItemPriceColumn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("final sum = %v, want %v", got, want)
	}
	for probe := uint64(0); probe < inserted; probe += 97 {
		rec, err := tbl.Get(probe)
		if err != nil || rec[ItemPriceColumn].F != model[probe] {
			t.Fatalf("Get(%d) = %v, %v; want price %v", probe, rec, err, model[probe])
		}
	}
}
