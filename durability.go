package hybridstore

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/wal"
)

// SyncPolicy selects when the write-ahead log reaches stable storage.
type SyncPolicy = wal.SyncPolicy

// Sync policies, re-exported from internal/wal.
const (
	// SyncGrouped (the default) batches concurrent commits into one
	// fsync: a flush leader optionally waits Durability.GroupWindow for
	// cohort arrivals, writes everything pending, syncs once, and wakes
	// every waiter. Every acknowledged write is durable.
	SyncGrouped = wal.SyncGrouped
	// SyncAlways fsyncs on every write — strongest latency floor, no
	// batching.
	SyncAlways = wal.SyncAlways
	// SyncNone never fsyncs (the OS flushes eventually): acknowledged
	// writes can be lost on a machine crash, but never reordered or
	// torn — recovery still sees a clean prefix.
	SyncNone = wal.SyncNone
)

// Durability tunes write-ahead logging and checkpointing for a DB
// opened with OpenDir. The zero value is the recommended configuration:
// group-committed fsyncs with no artificial window, every table
// durable. Open ignores this field — an in-memory DB stays a pure
// in-memory DB.
type Durability struct {
	// Sync is the fsync policy (default SyncGrouped).
	Sync SyncPolicy
	// GroupWindow is how long a group-commit flush leader waits for
	// cohort commits before syncing (default 0: no artificial wait; the
	// natural batching of concurrent committers still applies).
	GroupWindow time.Duration
	// Tables opts tables into durability by name. Empty means every
	// table created on this DB is durable; otherwise only the named
	// ones log and checkpoint, and the rest stay memory-only.
	Tables []string
}

// Filenames inside a durable DB directory.
const (
	walFile        = "wal.log"
	checkpointFile = "checkpoint.db"
)

// ckptCoord is one table's checkpoint coordinates: everything at
// ts <= TS or row < Rows is covered by the checkpoint image, and the
// matching log records are redundant.
type ckptCoord struct {
	ts   uint64
	rows uint64
}

// OpenDir opens a durable DB rooted at dir, recovering whatever a
// previous process left there: the newest checkpoint image is restored
// (base fragments byte-identical, zone maps still sealed, device cache
// re-primed from the manifest), then the write-ahead log is replayed in
// commit order — so every write acknowledged before a crash, and
// nothing that was not acknowledged as committed, is visible again. A
// fresh directory comes up empty. The returned DB behaves like Open's,
// plus Checkpoint and a meaningful Close; tables opted into durability
// (Durability.Tables) log every insert and MVCC commit before
// acknowledging.
func OpenDir(dir string, opts Options) (*DB, error) {
	db := Open(opts)
	db.dir = dir

	coords := make(map[string]ckptCoord)
	payload, err := wal.ReadSnapshotFile(filepath.Join(dir, checkpointFile))
	switch {
	case err == nil:
		d := wal.NewDecoder(payload)
		n := int(d.U32())
		for i := 0; i < n; i++ {
			name := d.Str()
			engName := d.Str()
			s := d.Schema()
			blob := d.Blob()
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("hybridstore: reading checkpoint: %w", err)
			}
			if engName != "core" {
				return nil, fmt.Errorf("hybridstore: checkpoint table %q has unknown engine %q", name, engName)
			}
			// The blob leads with the pinned timestamp and row count —
			// the coordinates replay filtering keys on when a crash
			// interrupted log truncation.
			peek := wal.NewDecoder(blob)
			coords[name] = ckptCoord{ts: peek.U64(), rows: peek.U64()}
			t, err := db.eng.RestoreTable(name, s, wal.NewDecoder(blob))
			if err != nil {
				return nil, fmt.Errorf("hybridstore: restoring table %q: %w", name, err)
			}
			db.tables[name] = &Table{db: db, t: t, e: db.eng, nam: name, durable: true}
		}
	case errors.Is(err, fs.ErrNotExist):
		// Fresh directory (or first checkpoint never completed): the log
		// alone carries the full history.
	default:
		return nil, err
	}

	l, recs, err := wal.Open(filepath.Join(dir, walFile), wal.Options{
		Sync: opts.Durability.Sync, GroupWindow: opts.Durability.GroupWindow,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*DB, error) {
		l.Close()
		return nil, err
	}
	for _, r := range recs {
		switch r.Kind {
		case wal.KindCreate:
			if _, ok := db.tables[r.Table]; ok {
				// The checkpoint image covers the table and the crash hit
				// between snapshot write and log truncation.
				continue
			}
			if r.Engine != "core" {
				return fail(fmt.Errorf("hybridstore: logged table %q has unknown engine %q", r.Table, r.Engine))
			}
			t, err := db.eng.Create(r.Table, r.Schema)
			if err != nil {
				return fail(fmt.Errorf("hybridstore: replaying create of %q: %w", r.Table, err))
			}
			db.tables[r.Table] = &Table{db: db, t: t.(*core.Table), e: db.eng, nam: r.Table, durable: true}
		case wal.KindInsert:
			tbl := db.tables[r.Table]
			if tbl == nil {
				return fail(fmt.Errorf("hybridstore: logged insert for unknown table %q", r.Table))
			}
			if r.Row < coords[r.Table].rows {
				continue // covered by the checkpoint image
			}
			if err := tbl.t.ReplayInsert(r.Row, r.Rec); err != nil {
				return fail(err)
			}
		case wal.KindCommit:
			tbl := db.tables[r.Table]
			if tbl == nil {
				return fail(fmt.Errorf("hybridstore: logged commit for unknown table %q", r.Table))
			}
			if r.TS <= coords[r.Table].ts {
				continue // covered by the checkpoint image
			}
			if err := tbl.t.ReplayCommit(r.TS, r.Ops); err != nil {
				return fail(err)
			}
		default:
			// The reference engine logs updates inside commit records;
			// a bare update record cannot have come from this facade.
			return fail(fmt.Errorf("hybridstore: unexpected %v record for table %q", r.Kind, r.Table))
		}
	}
	db.wal = l
	db.mu.RLock()
	for _, tbl := range db.tables {
		if tbl.durable {
			tbl.t.EnableWAL(l)
		}
	}
	db.mu.RUnlock()
	return db, nil
}

// Checkpoint serializes every durable table at an MVCC-consistent
// snapshot into the directory's checkpoint file, then truncates the
// write-ahead log down to the records the new image does not cover.
// Concurrent reads and writes keep running: each table's image is cut
// at a pinned snapshot timestamp, and writes that land during the
// checkpoint simply stay in the log. Crashing anywhere inside
// Checkpoint is safe — the image is published atomically (write +
// rename) and recovery skips log records an image already covers.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return errors.New("hybridstore: Checkpoint on a memory-only DB (use OpenDir)")
	}
	db.mu.RLock()
	var durables []*Table
	for _, t := range db.tables {
		if t.durable {
			durables = append(durables, t)
		}
	}
	db.mu.RUnlock()
	sort.Slice(durables, func(i, j int) bool { return durables[i].nam < durables[j].nam })

	enc := &wal.Encoder{}
	enc.U32(uint32(len(durables)))
	coords := make(map[string]ckptCoord, len(durables))
	for _, t := range durables {
		enc.Str(t.nam)
		enc.Str("core")
		enc.Schema(t.t.Schema())
		te := &wal.Encoder{}
		ts, rows, err := t.t.CheckpointTo(te)
		if err != nil {
			return fmt.Errorf("hybridstore: checkpointing %q: %w", t.nam, err)
		}
		enc.Blob(te.Bytes())
		coords[t.nam] = ckptCoord{ts: ts, rows: rows}
	}
	if err := wal.WriteSnapshotFile(filepath.Join(db.dir, checkpointFile), enc.Bytes()); err != nil {
		return err
	}
	return db.wal.Compact(func(r *wal.Record) bool {
		c, ok := coords[r.Table]
		if !ok {
			return true // not checkpointed here; its history stays in the log
		}
		switch r.Kind {
		case wal.KindCreate:
			return false
		case wal.KindInsert:
			return r.Row >= c.rows
		case wal.KindCommit:
			return r.TS > c.ts
		}
		return true
	})
}

// Close flushes and closes the write-ahead log. On a memory-only DB it
// is a no-op. Close does not checkpoint; call Checkpoint first to keep
// the next open's replay short.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// durableName reports whether a table with this name participates in
// durability under the opt-in list.
func (db *DB) durableName(name string) bool {
	if len(db.dur.Tables) == 0 {
		return true
	}
	for _, n := range db.dur.Tables {
		if n == name {
			return true
		}
	}
	return false
}
