// Command loadgen is the warp-style concurrent load driver for the
// serving layer: it points a swarm of client lanes at a running server
// (or spins up its own with -selfserve) and reports wall-clock QPS and
// p50/p95/p99 latency per operation class — point writes, predicate
// sums and fused group-bys, mixed by -mix.
//
// Closed loop by default (each lane fires its next request when the
// last answers); -rate N switches to open-loop arrivals at N requests
// per second. With -autoterm the run ends as soon as throughput
// stabilizes instead of burning the full -duration.
//
// The exit status is the CI contract: 0 when every request succeeded
// (admission sheds are reported separately and do not fail the run),
// 1 when any request errored.
//
// Usage:
//
//	loadgen -selfserve [-rows N] [-batch-window D] [-unbatched]
//	        [-concurrency N] [-duration D] [-mix write=20,sum=60,group=20]
//	        [-rate N] [-autoterm] [-csv serving_panel.csv]
//	loadgen -addr http://host:port ...
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"hybridstore"
	"hybridstore/internal/server"
	"hybridstore/internal/server/loadgen"
)

func main() {
	addr := flag.String("addr", "", "serving endpoint, e.g. http://127.0.0.1:8080 (omit with -selfserve)")
	selfserve := flag.Bool("selfserve", false, "spin up an in-process server on a loopback port and drive that")
	rows := flag.Uint64("rows", 4096, "item rows to load (-selfserve) and the point-write row domain")
	batchWindow := flag.Duration("batch-window", server.DefaultBatchWindow, "shared-scan batching window for -selfserve")
	unbatched := flag.Bool("unbatched", false, "disable shared-scan batching in the -selfserve server")
	concurrency := flag.Int("concurrency", 16, "client lanes")
	duration := flag.Duration("duration", 5*time.Second, "run length (upper bound with -autoterm)")
	mixFlag := flag.String("mix", "write=20,sum=60,group=20", "operation mix in percent")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	autoterm := flag.Bool("autoterm", false, "stop early once throughput stabilizes")
	csvPath := flag.String("csv", "", "also write the per-class panel to this CSV file")
	seed := flag.Int64("seed", 1, "workload seed")
	walDir := flag.String("wal", "", "durability directory for -selfserve: the item table write-ahead-logs every acknowledged write and recovers on restart")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	base := *addr
	if *selfserve {
		if base != "" {
			fmt.Fprintln(os.Stderr, "loadgen: -addr and -selfserve are mutually exclusive")
			os.Exit(2)
		}
		stop, url, err := serveLocal(*rows, *batchWindow, *unbatched, *walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: selfserve:", err)
			os.Exit(1)
		}
		defer stop()
		base = url
		fmt.Printf("selfserve: %d item rows on %s (batch window %v)\n", *rows, url, windowOf(*batchWindow, *unbatched))
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadgen: need -addr or -selfserve")
		os.Exit(2)
	}

	res, err := loadgen.Run(loadgen.Options{
		BaseURL:     base,
		Rows:        *rows,
		Concurrency: *concurrency,
		Duration:    *duration,
		Mix:         mix,
		OpenRate:    *rate,
		AutoTerm:    *autoterm,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: csv:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if res.TotalErrs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) errored\n", res.TotalErrs)
		os.Exit(1)
	}
}

func windowOf(w time.Duration, unbatched bool) time.Duration {
	if unbatched {
		return 0
	}
	return w
}

// serveLocal builds the warm device-cached item fixture and serves it
// on a loopback port. With a non-empty walDir the item table is opened
// durably: a previous process's rows are recovered instead of reloaded,
// and every write acknowledged over HTTP survives a kill.
func serveLocal(rows uint64, window time.Duration, unbatched bool, walDir string) (stop func(), url string, err error) {
	opts := hybridstore.Options{ChunkRows: 256, DeviceCache: true}
	var db *hybridstore.DB
	if walDir != "" {
		opts.Durability = hybridstore.Durability{Tables: []string{"item"}}
		if db, err = hybridstore.OpenDir(walDir, opts); err != nil {
			return nil, "", err
		}
	} else {
		db = hybridstore.Open(opts)
	}
	fail := func(tbl *hybridstore.Table, err error) (func(), string, error) {
		if tbl != nil {
			tbl.Free()
		}
		db.Close()
		return nil, "", err
	}
	tbl := db.Table("item")
	if tbl == nil { // fresh store (always, without -wal): load the fixture
		if tbl, err = db.CreateTable("item", hybridstore.ItemSchema()); err != nil {
			return fail(nil, err)
		}
		for i := uint64(0); i < rows; i++ {
			if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
				return fail(tbl, err)
			}
		}
		// Re-key i_im_id to a dashboard-cardinality group domain and fold
		// the rewrites: the raw generator gives near-unique ids, which makes
		// every group-by answer as wide as the table.
		for i := uint64(0); i < rows; i++ {
			if err := tbl.Update(i, 1, hybridstore.Int32Value(int32(i%64))); err != nil {
				return fail(tbl, err)
			}
		}
	} else {
		fmt.Printf("selfserve: recovered %d item rows from %s\n", tbl.Rows(), walDir)
	}
	if err := tbl.Merge(); err != nil {
		return fail(tbl, err)
	}
	if walDir != "" {
		// Cut a checkpoint of the loaded fixture so the next recovery
		// restores sealed fragments instead of replaying the bulk load.
		if err := db.Checkpoint(); err != nil {
			return fail(tbl, err)
		}
	}
	// Warm pass: populate the device cache before lanes arrive, so the
	// measured run starts from the steady state.
	if _, _, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, hybridstore.GtFloat(0)); err != nil {
		return fail(tbl, err)
	}
	s := server.New(server.Config{DB: db, BatchWindow: windowOf(window, unbatched)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(tbl, err)
	}
	go s.Serve(l)
	return func() { l.Close(); db.Close(); tbl.Free() }, "http://" + l.Addr().String(), nil
}
