// Command loadgen is the warp-style concurrent load driver for the
// serving layer: it points a swarm of client lanes at a running server
// (or spins up its own with -selfserve) and reports wall-clock QPS and
// p50/p95/p99 latency per operation class — point writes, zipfian
// point reads, predicate sums and fused group-bys, mixed by -mix. The
// per-class result-cache hit rate is scraped from /metrics and lands
// in the report and the -csv panel.
//
// Closed loop by default (each lane fires its next request when the
// last answers); -rate N switches to open-loop arrivals at N requests
// per second. With -autoterm the run ends as soon as throughput
// stabilizes instead of burning the full -duration.
//
// The exit status is the CI contract: 0 when every request succeeded
// (admission sheds are reported separately and do not fail the run),
// 1 when any request errored. With -selfserve the run additionally
// verifies, after the lanes quiesce, that served bytes are
// bit-identical to direct facade execution — point reads and predicate
// sums are replayed over HTTP and compared byte for byte; any
// divergence (a stale cache entry, a broken gather fan-out) exits 1.
//
// Usage:
//
//	loadgen -selfserve [-rows N] [-batch-window D] [-unbatched]
//	        [-result-cache BYTES] [-concurrency N] [-duration D]
//	        [-mix write=20,point=20,sum=45,group=15]
//	        [-rate N] [-autoterm] [-csv serving_panel.csv]
//	loadgen -addr http://host:port ...
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hybridstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/server"
	"hybridstore/internal/server/loadgen"
)

func main() {
	addr := flag.String("addr", "", "serving endpoint, e.g. http://127.0.0.1:8080 (omit with -selfserve)")
	selfserve := flag.Bool("selfserve", false, "spin up an in-process server on a loopback port and drive that")
	rows := flag.Uint64("rows", 4096, "item rows to load (-selfserve) and the point-write row domain")
	batchWindow := flag.Duration("batch-window", server.DefaultBatchWindow, "shared-scan batching window for -selfserve")
	unbatched := flag.Bool("unbatched", false, "disable shared-scan batching in the -selfserve server")
	resCache := flag.Int64("result-cache", 64<<20, "result cache capacity in bytes for -selfserve (0 disables)")
	concurrency := flag.Int("concurrency", 16, "client lanes")
	duration := flag.Duration("duration", 5*time.Second, "run length (upper bound with -autoterm)")
	mixFlag := flag.String("mix", "write=20,point=20,sum=45,group=15", "operation mix in percent")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	autoterm := flag.Bool("autoterm", false, "stop early once throughput stabilizes")
	csvPath := flag.String("csv", "", "also write the per-class panel to this CSV file")
	seed := flag.Int64("seed", 1, "workload seed")
	walDir := flag.String("wal", "", "durability directory for -selfserve: the item table write-ahead-logs every acknowledged write and recovers on restart")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	base := *addr
	var localTbl *hybridstore.Table
	if *selfserve {
		if base != "" {
			fmt.Fprintln(os.Stderr, "loadgen: -addr and -selfserve are mutually exclusive")
			os.Exit(2)
		}
		stop, url, tbl, err := serveLocal(*rows, *batchWindow, *unbatched, *resCache, *walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: selfserve:", err)
			os.Exit(1)
		}
		defer stop()
		base, localTbl = url, tbl
		fmt.Printf("selfserve: %d item rows on %s (batch window %v, result cache %d B)\n",
			*rows, url, windowOf(*batchWindow, *unbatched), *resCache)
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadgen: need -addr or -selfserve")
		os.Exit(2)
	}

	res, err := loadgen.Run(loadgen.Options{
		BaseURL:     base,
		Rows:        *rows,
		Concurrency: *concurrency,
		Duration:    *duration,
		Mix:         mix,
		OpenRate:    *rate,
		AutoTerm:    *autoterm,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: csv:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if res.TotalErrs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) errored\n", res.TotalErrs)
		os.Exit(1)
	}
	if localTbl != nil {
		n, err := verifyBits(base, localTbl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: bit-match verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("bit-match verification: %d served responses identical to direct execution\n", n)
	}
}

// verifyBits replays point reads and predicate sums over HTTP against
// the quiesced table and compares each response byte for byte with the
// facade's direct answer rendered the way the server renders it
// (shortest-exact float formatting). A single divergent byte — a stale
// cache entry surviving invalidation, a gather pass fanning out the
// wrong record — fails the run.
func verifyBits(base string, tbl *hybridstore.Table) (int, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	post := func(path, body string) (string, error) {
		resp, err := c.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != 200 {
			return "", fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, b)
		}
		return string(b), nil
	}
	sessResp, err := post("/v1/session", `{"tenant":"verify"}`)
	if err != nil {
		return 0, err
	}
	sid := strings.TrimSuffix(strings.TrimPrefix(sessResp, `{"session_id":"`), `"}`)
	prepare := func(spec string) (int, error) {
		resp, err := post("/v1/prepare", spec)
		if err != nil {
			return 0, err
		}
		var id int
		if _, err := fmt.Sscanf(resp, `{"stmt_id":%d}`, &id); err != nil {
			return 0, fmt.Errorf("bad prepare response %q", resp)
		}
		return id, nil
	}
	get, err := prepare(fmt.Sprintf(`{"session_id":"%s","op":"get","table":"item"}`, sid))
	if err != nil {
		return 0, err
	}
	sum, err := prepare(fmt.Sprintf(`{"session_id":"%s","op":"sum_where","table":"item","col":4}`, sid))
	if err != nil {
		return 0, err
	}

	checked := 0
	// Point reads: the zipfian hot head (re-read twice so the second
	// pass crosses the result cache) plus a stride across the table.
	rows := tbl.Rows()
	var sample []uint64
	for r := uint64(0); r < 8 && r < rows; r++ {
		sample = append(sample, r, r)
	}
	for r := uint64(0); r < rows; r += rows/16 + 1 {
		sample = append(sample, r)
	}
	for _, row := range sample {
		rec, err := tbl.Get(row)
		if err != nil {
			return checked, err
		}
		want := renderRecord(rec)
		got, err := post("/v1/exec", fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":%d}`, sid, get, row))
		if err != nil {
			return checked, err
		}
		if got != want {
			return checked, fmt.Errorf("get(%d):\n served %s\n direct %s", row, got, want)
		}
		checked++
	}
	// Predicate sums: the same cuts the lanes fired, twice each.
	cuts := []struct {
		wire string
		p    hybridstore.FloatPred
	}{
		{`{"kind":"lt","hi":30}`, hybridstore.LtFloat(30)},
		{`{"kind":"gt","lo":50}`, hybridstore.GtFloat(50)},
		{`{"kind":"between","lo":10,"hi":60}`, hybridstore.BetweenFloat(10, 60)},
		{`{"kind":"between","lo":20,"hi":80}`, hybridstore.BetweenFloat(20, 80)},
	}
	for pass := 0; pass < 2; pass++ {
		for _, cut := range cuts {
			s, n, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, cut.p)
			if err != nil {
				return checked, err
			}
			want := fmt.Sprintf(`{"sum":%s,"count":%d}`, strconv.FormatFloat(s, 'g', -1, 64), n)
			got, err := post("/v1/exec", fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":%s}`, sid, sum, cut.wire))
			if err != nil {
				return checked, err
			}
			if got != want {
				return checked, fmt.Errorf("sum_where %s:\n served %s\n direct %s", cut.wire, got, want)
			}
			checked++
		}
	}
	return checked, nil
}

// renderRecord mirrors the server's record serialization: a JSON array
// with shortest-exact floats.
func renderRecord(rec hybridstore.Record) string {
	var b strings.Builder
	b.WriteString(`{"record":[`)
	for i, v := range rec {
		if i > 0 {
			b.WriteByte(',')
		}
		switch v.Kind {
		case schema.Float64:
			b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
		case schema.Char:
			b.WriteByte('"')
			b.WriteString(v.S)
			b.WriteByte('"')
		default:
			b.WriteString(strconv.FormatInt(v.I, 10))
		}
	}
	b.WriteString(`]}`)
	return b.String()
}

func windowOf(w time.Duration, unbatched bool) time.Duration {
	if unbatched {
		return 0
	}
	return w
}

// serveLocal builds the warm device-cached item fixture and serves it
// on a loopback port. With a non-empty walDir the item table is opened
// durably: a previous process's rows are recovered instead of reloaded,
// and every write acknowledged over HTTP survives a kill.
func serveLocal(rows uint64, window time.Duration, unbatched bool, resCache int64, walDir string) (stop func(), url string, vtbl *hybridstore.Table, err error) {
	opts := hybridstore.Options{ChunkRows: 256, DeviceCache: true,
		ResultCache: hybridstore.ResultCacheOptions{Cap: resCache}}
	var db *hybridstore.DB
	if walDir != "" {
		opts.Durability = hybridstore.Durability{Tables: []string{"item"}}
		if db, err = hybridstore.OpenDir(walDir, opts); err != nil {
			return nil, "", nil, err
		}
	} else {
		db = hybridstore.Open(opts)
	}
	fail := func(tbl *hybridstore.Table, err error) (func(), string, *hybridstore.Table, error) {
		if tbl != nil {
			tbl.Free()
		}
		db.Close()
		return nil, "", nil, err
	}
	tbl := db.Table("item")
	if tbl == nil { // fresh store (always, without -wal): load the fixture
		if tbl, err = db.CreateTable("item", hybridstore.ItemSchema()); err != nil {
			return fail(nil, err)
		}
		for i := uint64(0); i < rows; i++ {
			if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
				return fail(tbl, err)
			}
		}
		// Re-key i_im_id to a dashboard-cardinality group domain and fold
		// the rewrites: the raw generator gives near-unique ids, which makes
		// every group-by answer as wide as the table.
		for i := uint64(0); i < rows; i++ {
			if err := tbl.Update(i, 1, hybridstore.Int32Value(int32(i%64))); err != nil {
				return fail(tbl, err)
			}
		}
	} else {
		fmt.Printf("selfserve: recovered %d item rows from %s\n", tbl.Rows(), walDir)
	}
	if err := tbl.Merge(); err != nil {
		return fail(tbl, err)
	}
	if walDir != "" {
		// Cut a checkpoint of the loaded fixture so the next recovery
		// restores sealed fragments instead of replaying the bulk load.
		if err := db.Checkpoint(); err != nil {
			return fail(tbl, err)
		}
	}
	// Warm pass: populate the device cache before lanes arrive, so the
	// measured run starts from the steady state.
	if _, _, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, hybridstore.GtFloat(0)); err != nil {
		return fail(tbl, err)
	}
	s := server.New(server.Config{DB: db, BatchWindow: windowOf(window, unbatched)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(tbl, err)
	}
	go s.Serve(l)
	return func() { l.Close(); db.Close(); tbl.Free() }, "http://" + l.Addr().String(), tbl, nil
}
