// Command taxonomy regenerates the paper's survey artifacts from live
// engine structure: Table 1 (the classification of all ten surveyed
// storage engines plus the reference engine) and the Figure-4 taxonomy
// tree. Each engine is instantiated, loaded with a representative
// workload, and classified structurally — the table is derived, not
// hard-coded.
//
// Usage:
//
//	taxonomy [-tree] [-audit] [-rows N]
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/all"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

func main() {
	tree := flag.Bool("tree", false, "print the Figure-4 taxonomy tree instead of Table 1")
	audit := flag.Bool("audit", false, "also validate every classification against the taxonomy rules")
	rows := flag.Uint64("rows", 512, "rows to load into each engine before classifying")
	flag.Parse()

	if *tree {
		fmt.Print(taxonomy.Tree().Render())
		return
	}

	env := engine.NewEnv()
	engines := all.Engines(env)
	engines = append(engines, core.New(env, core.Options{
		ChunkRows: 128, HotChunks: 1, DevicePlacement: true,
	}))

	var rowsOut []taxonomy.Classification
	failed := false
	for _, e := range engines {
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name(), err)
			failed = true
			continue
		}
		if err := workload.Generate(*rows, workload.Item, func(i uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		}); err != nil {
			fmt.Fprintf(os.Stderr, "%s: load: %v\n", e.Name(), err)
			failed = true
			continue
		}
		drive(e.Name(), tbl)
		c, violations, err := engine.Audit(e, tbl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: classify: %v\n", e.Name(), err)
			failed = true
			continue
		}
		if *audit {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name(), v)
				failed = true
			}
		}
		rowsOut = append(rowsOut, c)
		tbl.Free()
	}
	fmt.Print(taxonomy.RenderTable(rowsOut))
	if *audit && !failed {
		fmt.Println("\nall classifications consistent with the taxonomy rules")
	}
	if failed {
		os.Exit(1)
	}
}

// drive puts engines whose characteristic structure only appears under a
// workload into that state (mirroring the conformance suite).
func drive(name string, tbl engine.Table) {
	if a, ok := tbl.(engine.Adaptive); ok {
		for i := 0; i < 50; i++ {
			a.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
			a.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
		}
		_, _ = a.Adapt()
	}
	type placer interface{ Place(c int) error }
	if p, ok := tbl.(placer); ok {
		_ = p.Place(workload.ItemPriceCol)
	}
	// The reference engine's manual placement realizes the mixed data
	// location at this demo scale (its advisor is cost-gated).
	type corePlacer interface{ PlaceColumn(c int) error }
	if p, ok := tbl.(corePlacer); ok {
		_ = p.PlaceColumn(workload.ItemPriceCol)
	}
	if name == "Peloton" || name == "ES2" {
		// Several tile groups / partition stripes make the incremental
		// (Peloton) and two-step (ES²) structures visible; ids continue
		// past the loaded prefix so pk indexes accept them.
		loaded := tbl.Rows()
		_ = workload.Generate(2048, func(i uint64) schema.Record {
			return workload.Item(loaded + i)
		}, func(i uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		})
	}
}
