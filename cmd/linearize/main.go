// Command linearize renders the paper's Figure 3: the terminology of
// relations, layouts, fragments, tuplets and linearizations, demonstrated
// byte-for-byte on the example relation R(A,B,C,D,E) with four tuples.
// It builds the two layouts of the figure — a weak flexible one (vertical
// sub-relations {A,B,C} and {D,E}) and a strong flexible one ({A,B,C}
// fat, {D} and {E} thin) — and prints how each fragment's tuplets land in
// one-dimensional memory under NSM-fixed, DSM-fixed, direct, and the
// emulated variants.
//
// Usage:
//
//	linearize
package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	s, err := schema.New(
		schema.Int64Attr("A"), schema.Int64Attr("B"), schema.Int64Attr("C"),
		schema.Int64Attr("D"), schema.Int64Attr("E"),
	)
	if err != nil {
		return err
	}
	host := mem.NewAllocator(mem.Host, 0)
	names := []string{"a", "b", "c", "d", "e"}

	fmt.Println("Figure 3: relation R(A,B,C,D,E) with tuples r1..r4")
	fmt.Println()

	// The full-relation fixed linearizations.
	for _, lin := range []layout.Linearization{layout.NSM, layout.DSM} {
		f, err := layout.NewFragment(host, s, layout.AllCols(s), layout.RowRange{Begin: 0, End: 4}, lin)
		if err != nil {
			return err
		}
		if err := fill(f, nil); err != nil {
			return err
		}
		fmt.Printf("%s-fixed      > %s\n", lin, dump(f, names))
		f.Free()
	}

	// Layout 1 (weak flexible): sub-relations {A,B,C} and {D,E}.
	fmt.Println()
	fmt.Println("Layout 1 for R (weak flexible): sub-relations {A,B,C} NSM, {D,E} DSM")
	l1 := layout.NewLayout("layout1", s)
	abc, err := layout.NewFragment(host, s, []int{0, 1, 2}, layout.RowRange{Begin: 0, End: 4}, layout.NSM)
	if err != nil {
		return err
	}
	de, err := layout.NewFragment(host, s, []int{3, 4}, layout.RowRange{Begin: 0, End: 4}, layout.DSM)
	if err != nil {
		return err
	}
	l1.Add(abc)
	l1.Add(de)
	for _, f := range l1.Fragments() {
		if err := fill(f, nil); err != nil {
			return err
		}
		fmt.Printf("  fragment %v %s > %s\n", f.Cols(), pad(f), dump(f, names))
	}
	fmt.Printf("  vertical-only: %v, covers R: %v\n", l1.VerticalOnly(), l1.Covers(4))

	// Layout 2 (strong flexible in the figure): {A,B,C} fat NSM, {D}, {E}
	// thin direct — DSM-emulated for D and E.
	fmt.Println()
	fmt.Println("Layout 2 for R: fat {A,B,C} NSM-fixed; thin {D}, {E} direct (DSM-emulated)")
	l2 := layout.NewLayout("layout2", s)
	fat, err := layout.NewFragment(host, s, []int{0, 1, 2}, layout.RowRange{Begin: 0, End: 4}, layout.NSM)
	if err != nil {
		return err
	}
	l2.Add(fat)
	for _, c := range []int{3, 4} {
		thin, err := layout.NewFragment(host, s, []int{c}, layout.RowRange{Begin: 0, End: 4}, layout.Direct)
		if err != nil {
			return err
		}
		l2.Add(thin)
	}
	for _, f := range l2.Fragments() {
		if err := fill(f, nil); err != nil {
			return err
		}
		kind := "thin, direct"
		if f.IsFat() {
			kind = "fat, " + f.Lin().String()
		}
		fmt.Printf("  fragment %v (%s) %s> %s\n", f.Cols(), kind, pad(f), dump(f, names))
	}
	fmt.Println()

	// Record materialization stitches tuplets across fragments.
	rec, err := l2.Record(2)
	if err != nil {
		return err
	}
	fmt.Printf("Record(r3) via layout 2: %v  (tuplets stitched across 3 fragments)\n", rec)
	return nil
}

// fill appends tuplets r1..r4: attribute X of tuple i encodes as
// 10*(i+1) + attribute index.
func fill(f *layout.Fragment, _ []string) error {
	for i := int64(0); i < 4; i++ {
		vals := make([]schema.Value, 0, f.Arity())
		for _, c := range f.Cols() {
			vals = append(vals, schema.IntValue(10*(i+1)+int64(c)))
		}
		if err := f.AppendTuplet(vals); err != nil {
			return err
		}
	}
	return nil
}

// dump renders the fragment's raw memory as the figure's symbol stream
// (a1 b1 c1 ...), decoding each 8-byte slot back to its (attr, tuple)
// identity.
func dump(f *layout.Fragment, names []string) string {
	raw := f.Raw()
	out := ""
	slots := f.Len() * f.Arity()
	for i := 0; i < slots; i++ {
		v := int64(binary.LittleEndian.Uint64(raw[i*8:]))
		attr := v % 10
		tuple := v / 10
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s%d", names[attr], tuple)
	}
	return out
}

// pad aligns the arrows for multi-width fragments.
func pad(f *layout.Fragment) string {
	if f.Arity() > 1 {
		return ""
	}
	return "    "
}
