// Command crashtest is the durability acceptance harness: it proves
// that a SIGKILLed serving process loses no acknowledged write.
//
// The parent re-executes itself with -child. The child opens a durable
// store (OpenDir + write-ahead log), drives a mixed write load —
// sequential inserts plus multi-operation transactional updates — and
// prints one acknowledgment line per write AFTER the write returns
// (i.e. after its log record is fsynced). Mid-load, the parent kills
// the child with SIGKILL — no shutdown hook, no flush, the process just
// dies — then reopens the same directory in-process and checks:
//
//   - every acknowledged insert is present and bit-identical to what
//     the generator produced for its primary key;
//   - every row touched by an acknowledged transactional update holds a
//     value at least as new as the last acknowledged one (a later,
//     unacknowledged commit may legitimately have reached the log);
//   - unacknowledged inserts that did survive are fully intact — the
//     torn tail can drop suffix writes, never corrupt them.
//
// Multiple -rounds chain kill → recover → keep writing on the same
// directory, exercising recovery-then-continue. With -bench-writes the
// tool also prices the durable write lane: identical concurrent insert
// storms against a memory-only store and a WAL-on store, reporting
// per-write p50/p99 and the p99 overhead percentage. Results land in
// -csv (recovery_panel.csv by default); exit status 1 means a lost or
// corrupt acknowledged write.
//
// Usage:
//
//	crashtest [-rounds N] [-acks N] [-bench-writes N] [-csv recovery_panel.csv] [-dir D]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridstore"
	"hybridstore/internal/server"
)

// txRows is the number of dedicated rows (primary keys 0..txRows-1) the
// transactional update lane cycles over; the insert lane starts above.
const txRows = 64

// groupWindow is the -group-window flag: how long a group-commit flush
// leader holds the door for cohort commits.
var groupWindow time.Duration

func opts() hybridstore.Options {
	return hybridstore.Options{
		ChunkRows: 128,
		HotChunks: 1,
		Durability: hybridstore.Durability{
			Tables:      []string{"accounts"},
			GroupWindow: groupWindow,
		},
	}
}

func accountSchema() (*hybridstore.Schema, error) {
	return hybridstore.NewSchema(
		hybridstore.Int64Attr("id"),
		hybridstore.CharAttr("name", 8),
		hybridstore.Float64Attr("balance"),
	)
}

// insertRec is the deterministic record for insert-lane primary key pk:
// the parent regenerates it independently to check recovered rows
// bit-for-bit.
func insertRec(pk uint64) hybridstore.Record {
	return hybridstore.Record{
		hybridstore.IntValue(int64(pk)),
		hybridstore.CharValue("w"),
		hybridstore.FloatValue(float64(pk)*3 + 1),
	}
}

func main() {
	childMode := flag.Bool("child", false, "run as the killable write-load child (internal)")
	dir := flag.String("dir", "", "durable DB directory (default: a fresh temp dir, removed on success)")
	rounds := flag.Int("rounds", 2, "kill/recover cycles")
	acks := flag.Int("acks", 400, "acknowledged writes per round before the SIGKILL")
	benchWrites := flag.Int("bench-writes", 2000, "inserts per lane for the WAL overhead comparison (0 = skip)")
	csvPath := flag.String("csv", "recovery_panel.csv", "write the recovery panel to this CSV file (empty = skip)")
	flag.DurationVar(&groupWindow, "group-window", 0, "group-commit window for every durable store the harness opens")
	flag.Parse()

	if *childMode {
		if err := runChild(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "crashtest child:", err)
			os.Exit(1)
		}
		return
	}

	workDir := *dir
	if workDir == "" {
		d, err := os.MkdirTemp("", "crashtest-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest:", err)
			os.Exit(1)
		}
		workDir = d
		defer os.RemoveAll(d)
	}

	m := &model{lastTx: make(map[uint64]float64)}
	var recoveredRows uint64
	for round := 0; round < *rounds; round++ {
		if err := runRound(workDir, *acks, m); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: round %d: %v\n", round, err)
			os.Exit(1)
		}
		rows, lost := verify(workDir, m)
		recoveredRows = rows
		fmt.Printf("round %d: killed after %d acked inserts + %d acked commits; recovered %d rows, %d lost\n",
			round, m.inserts, m.commits, rows, lost)
		if lost > 0 {
			writePanel(*csvPath, *rounds, m, rows, lost, nil)
			fmt.Fprintf(os.Stderr, "crashtest: %d acknowledged write(s) lost or corrupt\n", lost)
			os.Exit(1)
		}
	}

	var bench *overhead
	if *benchWrites > 0 {
		b, err := measureOverhead(*benchWrites)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashtest: overhead bench:", err)
			os.Exit(1)
		}
		bench = b
		fmt.Printf("storage lane: wal-off p50 %.1fµs p99 %.1fµs | wal-on p50 %.1fµs p99 %.1fµs | p99 overhead %+.1f%%\n",
			bench.offP50, bench.offP99, bench.onP50, bench.onP99, bench.p99Pct())
		fmt.Printf("serving write lane: wal-off p50 %.1fµs p99 %.1fµs | wal-on p50 %.1fµs p99 %.1fµs | p99 overhead %+.1f%%\n",
			bench.servOffP50, bench.servOffP99, bench.servOnP50, bench.servOnP99, bench.servP99Pct())
		fmt.Printf("serving mixed lane: wal-off p50 %.1fµs p99 %.1fµs | wal-on p50 %.1fµs p99 %.1fµs | p99 overhead %+.1f%%\n",
			bench.mixOffP50, bench.mixOffP99, bench.mixOnP50, bench.mixOnP99, bench.mixP99Pct())
	}
	writePanel(*csvPath, *rounds, m, recoveredRows, 0, bench)
	fmt.Printf("crashtest: %d round(s), every acknowledged write recovered\n", *rounds)
}

// model accumulates what the parent saw acknowledged across rounds.
type model struct {
	inserts uint64             // acked insert count; acked pks are txRows..txRows+inserts-1
	commits uint64             // acked transactional commits
	lastTx  map[uint64]float64 // row -> last acked committed balance
}

// runRound spawns the child on dir, reads acknowledgment lines until
// the threshold, SIGKILLs it, and folds every line read (including ones
// raced out after the kill decision — they were acknowledged) into m.
func runRound(dir string, ackTarget int, m *model) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.Command(self, "-child", "-dir", dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	killed := false
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "ready":
			continue
		case strings.HasPrefix(line, "a "):
			var pk uint64
			if _, err := fmt.Sscanf(line, "a %d", &pk); err != nil {
				return fmt.Errorf("bad ack line %q: %v", line, err)
			}
			// pk can run ahead of the acked count: an insert in flight at
			// the previous kill may have reached the log un-acked, and the
			// child resumes above it. It can never run behind.
			if pk < txRows+m.inserts {
				return fmt.Errorf("child acked insert pk %d, expected >= %d", pk, txRows+m.inserts)
			}
			m.inserts = pk - txRows + 1
		case strings.HasPrefix(line, "t "):
			var row uint64
			var val float64
			if _, err := fmt.Sscanf(line, "t %d %g", &row, &val); err != nil {
				return fmt.Errorf("bad ack line %q: %v", line, err)
			}
			m.lastTx[row] = val
			m.commits++
		default:
			return fmt.Errorf("unexpected child output %q", line)
		}
		acked++
		if acked >= ackTarget && !killed {
			// SIGKILL: the child gets no chance to flush or close anything.
			if err := cmd.Process.Kill(); err != nil {
				return err
			}
			killed = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !killed {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("child exited after only %d acks (target %d)", acked, ackTarget)
	}
	cmd.Wait() // the kill is the expected exit
	return nil
}

// verify reopens the directory and counts violations of the durability
// contract. It returns the recovered row count and the number of lost
// or corrupt acknowledged writes.
func verify(dir string, m *model) (rows uint64, lost int) {
	db, err := hybridstore.OpenDir(dir, opts())
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest: recovery failed:", err)
		return 0, int(m.inserts) + len(m.lastTx)
	}
	defer db.Close()
	tbl := db.Table("accounts")
	if tbl == nil {
		fmt.Fprintln(os.Stderr, "crashtest: accounts table not recovered")
		return 0, int(m.inserts) + len(m.lastTx)
	}
	rows = tbl.Rows()
	if rows < txRows+m.inserts {
		lost += int(txRows + m.inserts - rows)
	}
	// Every recovered insert-lane row — acknowledged or an in-flight
	// survivor — must match the generator exactly.
	for row := uint64(txRows); row < rows; row++ {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(insertRec(row)) {
			fmt.Fprintf(os.Stderr, "crashtest: row %d corrupt: %v (%v)\n", row, rec, err)
			lost++
		}
	}
	// Transactional rows: monotone counters, so recovered >= last acked.
	for row, want := range m.lastTx {
		rec, err := tbl.Get(row)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: tx row %d unreadable: %v\n", row, err)
			lost++
			continue
		}
		if rec[2].F < want {
			fmt.Fprintf(os.Stderr, "crashtest: tx row %d rolled back to %g, acked %g\n", row, rec[2].F, want)
			lost++
		}
	}
	return rows, lost
}

// runChild opens (or recovers) the durable store and writes until
// killed, acknowledging each write on stdout only after it returned —
// i.e. after its log record reached stable storage.
func runChild(dir string) error {
	if dir == "" {
		return fmt.Errorf("-child needs -dir")
	}
	db, err := hybridstore.OpenDir(dir, opts())
	if err != nil {
		return err
	}
	defer db.Close()
	tbl := db.Table("accounts")
	if tbl == nil {
		s, err := accountSchema()
		if err != nil {
			return err
		}
		if tbl, err = db.CreateTable("accounts", s); err != nil {
			return err
		}
		for r := uint64(0); r < txRows; r++ {
			rec := hybridstore.Record{
				hybridstore.IntValue(int64(r)),
				hybridstore.CharValue("base"),
				hybridstore.FloatValue(0),
			}
			if _, err := tbl.Insert(rec); err != nil {
				return err
			}
		}
	}
	next := tbl.Rows() // insert-lane pks equal row indexes
	ctr := float64(1)  // tx counter: resume above anything already committed
	for r := uint64(0); r < txRows; r++ {
		rec, err := tbl.Get(r)
		if err != nil {
			return err
		}
		if rec[2].F >= ctr {
			ctr = rec[2].F + 1
		}
	}
	fmt.Println("ready")
	for i := uint64(0); ; i++ {
		if i%4 == 3 {
			// A multi-operation transaction: both updates commit atomically
			// through one logged commit record.
			r := i % txRows
			x := tbl.Begin()
			if err := x.Update(r, 2, hybridstore.FloatValue(ctr)); err != nil {
				return err
			}
			if err := x.Update((r+1)%txRows, 2, hybridstore.FloatValue(ctr)); err != nil {
				return err
			}
			if err := x.Commit(); err != nil {
				return err
			}
			fmt.Printf("t %d %g\n", r, ctr)
			fmt.Printf("t %d %g\n", (r+1)%txRows, ctr)
			ctr++
		} else {
			if _, err := tbl.Insert(insertRec(next)); err != nil {
				return err
			}
			fmt.Printf("a %d\n", next)
			next++
		}
	}
}

// overhead holds two write-lane comparisons, memory-only vs
// write-ahead-logged: the raw storage lane (direct Insert calls under
// an 8-lane storm — fsync-bound by construction, since a memory insert
// costs under a microsecond) and the serving lane (HTTP point writes
// through the batching server — the acceptance-relevant number, where
// request handling dominates and the group-committed fsync amortizes
// over concurrent writers).
type overhead struct {
	offP50, offP99         float64 // raw storage lane, microseconds
	onP50, onP99           float64
	servOffP50, servOffP99 float64 // write-only serving lane over loopback HTTP
	servOnP50, servOnP99   float64
	mixOffP50, mixOffP99   float64 // standard serving mix (write=20,sum=60,group=20)
	mixOnP50, mixOnP99     float64
}

func pctOver(on, off float64) float64 {
	if off == 0 {
		return 0
	}
	return (on - off) / off * 100
}

func (o *overhead) p99Pct() float64     { return pctOver(o.onP99, o.offP99) }
func (o *overhead) servP99Pct() float64 { return pctOver(o.servOnP99, o.servOffP99) }
func (o *overhead) mixP99Pct() float64  { return pctOver(o.mixOnP99, o.mixOffP99) }

const benchLanes = 8

// measureOverhead runs the same concurrent insert storm against a
// memory-only store and a WAL-on store and compares per-write latency.
// Group commit is what keeps the durable lane close: concurrent writers
// share flush leaders, so an fsync amortizes over the cohort.
func measureOverhead(perLane int) (*overhead, error) {
	off, err := benchStore("", perLane)
	if err != nil {
		return nil, err
	}
	walDir, err := os.MkdirTemp("", "crashtest-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	on, err := benchStore(walDir, perLane)
	if err != nil {
		return nil, err
	}
	o := &overhead{
		offP50: percentile(off, 0.50), offP99: percentile(off, 0.99),
		onP50: percentile(on, 0.50), onP99: percentile(on, 0.99),
	}
	if o.servOffP50, o.servOffP99, err = servingLane(false, false); err != nil {
		return nil, err
	}
	if o.servOnP50, o.servOnP99, err = servingLane(true, false); err != nil {
		return nil, err
	}
	if o.mixOffP50, o.mixOffP99, err = servingLane(false, true); err != nil {
		return nil, err
	}
	if o.mixOnP50, o.mixOnP99, err = servingLane(true, true); err != nil {
		return nil, err
	}
	return o, nil
}

// servingLane measures HTTP request latency through the batching server
// over a warm item fixture, optionally durable. With mixed=false every
// request is a point write — the lane that pays the fsync directly.
// With mixed=true requests follow the standard serving mix
// (write=20,sum=60,group=20) and the percentiles cover all classes: the
// durability question a dashboard workload actually asks.
func servingLane(durable, mixed bool) (p50, p99 float64, err error) {
	hopts := hybridstore.Options{ChunkRows: 256}
	var db *hybridstore.DB
	if durable {
		dir, err := os.MkdirTemp("", "crashtest-serve-")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		hopts.Durability = hybridstore.Durability{Tables: []string{"item"}, GroupWindow: groupWindow}
		if db, err = hybridstore.OpenDir(dir, hopts); err != nil {
			return 0, 0, err
		}
	} else {
		db = hybridstore.Open(hopts)
	}
	defer db.Close()
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		return 0, 0, err
	}
	defer tbl.Free()
	const rows = 4096
	for i := uint64(0); i < rows; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			return 0, 0, err
		}
	}
	s := server.New(server.Config{DB: db, BatchWindow: server.DefaultBatchWindow})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	go s.Serve(l)
	url := "http://" + l.Addr().String()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: benchLanes}}
	post := func(path, body string) (string, int, error) {
		resp, err := client.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), resp.StatusCode, err
	}
	body, code, err := post("/v1/session", `{"tenant":"crashtest"}`)
	if err != nil || code != 200 {
		return 0, 0, fmt.Errorf("session: %v (status %d, %s)", err, code, body)
	}
	sid := strings.TrimSuffix(strings.TrimPrefix(body, `{"session_id":"`), `"}`)
	prep := func(spec string) (int, error) {
		body, code, err := post("/v1/prepare", fmt.Sprintf(`{"session_id":"%s",%s}`, sid, spec))
		if err != nil || code != 200 {
			return 0, fmt.Errorf("prepare: %v (status %d, %s)", err, code, body)
		}
		var id int
		if _, err := fmt.Sscanf(body, `{"stmt_id":%d}`, &id); err != nil {
			return 0, fmt.Errorf("bad prepare response %q", body)
		}
		return id, nil
	}
	write, err := prep(`"op":"update","table":"item","col":4`)
	if err != nil {
		return 0, 0, err
	}
	sum, err := prep(`"op":"sum_where","table":"item","col":4`)
	if err != nil {
		return 0, 0, err
	}
	group, err := prep(`"op":"group_sum_where","table":"item","col":4,"key_col":1`)
	if err != nil {
		return 0, 0, err
	}
	preds := []string{
		`{"kind":"lt","hi":30}`,
		`{"kind":"gt","lo":50}`,
		`{"kind":"between","lo":10,"hi":60}`,
		`{"kind":"between","lo":20,"hi":80}`,
	}

	// Measured with exact per-request timestamps: loadgen's log2-bucketed
	// histogram is only accurate to a factor of two, far too coarse for
	// an overhead-percentage comparison.
	const warmup, perLane = 100, 600
	lanes := make([][]float64, benchLanes)
	errs := make(chan error, benchLanes)
	var wg sync.WaitGroup
	for w := 0; w < benchLanes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, perLane)
			for i := 0; i < warmup+perLane; i++ {
				// The mixed lane follows write=20,sum=60,group=20 per
				// five requests; the write lane is writes only.
				var req string
				slot := i % 5
				switch {
				case !mixed || slot == 0:
					req = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":%d,"value":%d}`,
						sid, write, uint64(w*131+i*17)%rows, i%100)
				case slot == 4:
					req = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":%s}`,
						sid, group, preds[(w+i)%len(preds)])
				default:
					req = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":%s}`,
						sid, sum, preds[(w+i)%len(preds)])
				}
				start := time.Now()
				_, code, err := post("/v1/exec", req)
				if err != nil || code != 200 {
					errs <- fmt.Errorf("serving lane (durable=%v mixed=%v): %v (status %d)", durable, mixed, err, code)
					return
				}
				if i >= warmup {
					lat = append(lat, float64(time.Since(start).Nanoseconds())/1e3)
				}
			}
			lanes[w] = lat
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	var all []float64
	for _, l := range lanes {
		all = append(all, l...)
	}
	return percentile(all, 0.50), percentile(all, 0.99), nil
}

// benchStore inserts benchLanes*perLane rows concurrently and returns
// every per-insert latency in microseconds. Empty dir = memory-only.
func benchStore(dir string, perLane int) ([]float64, error) {
	var db *hybridstore.DB
	var err error
	if dir != "" {
		db, err = hybridstore.OpenDir(dir, opts())
		if err != nil {
			return nil, err
		}
	} else {
		db = hybridstore.Open(hybridstore.Options{ChunkRows: 128, HotChunks: 1})
	}
	defer db.Close()
	s, err := accountSchema()
	if err != nil {
		return nil, err
	}
	tbl, err := db.CreateTable("accounts", s)
	if err != nil {
		return nil, err
	}
	defer tbl.Free()

	lanes := make([][]float64, benchLanes)
	errs := make(chan error, benchLanes)
	var wg sync.WaitGroup
	for w := 0; w < benchLanes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, perLane)
			for i := 0; i < perLane; i++ {
				pk := uint64(w*perLane + i)
				start := time.Now()
				_, err := tbl.Insert(insertRec(pk))
				if err != nil {
					errs <- err
					return
				}
				lat = append(lat, float64(time.Since(start).Nanoseconds())/1e3)
			}
			lanes[w] = lat
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []float64
	for _, l := range lanes {
		all = append(all, l...)
	}
	return all, nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// writePanel emits the recovery panel CSV consumed by CI.
func writePanel(path string, rounds int, m *model, rows uint64, lost int, b *overhead) {
	if path == "" {
		return
	}
	var sb strings.Builder
	sb.WriteString("metric,value\n")
	fmt.Fprintf(&sb, "rounds,%d\n", rounds)
	fmt.Fprintf(&sb, "acked_inserts,%d\n", m.inserts)
	fmt.Fprintf(&sb, "acked_commits,%d\n", m.commits)
	fmt.Fprintf(&sb, "recovered_rows,%d\n", rows)
	fmt.Fprintf(&sb, "lost_writes,%d\n", lost)
	if b != nil {
		fmt.Fprintf(&sb, "storage_waloff_p50_us,%.1f\n", b.offP50)
		fmt.Fprintf(&sb, "storage_waloff_p99_us,%.1f\n", b.offP99)
		fmt.Fprintf(&sb, "storage_walon_p50_us,%.1f\n", b.onP50)
		fmt.Fprintf(&sb, "storage_walon_p99_us,%.1f\n", b.onP99)
		fmt.Fprintf(&sb, "storage_walon_p99_overhead_pct,%.1f\n", b.p99Pct())
		fmt.Fprintf(&sb, "serving_waloff_write_p50_us,%.1f\n", b.servOffP50)
		fmt.Fprintf(&sb, "serving_waloff_write_p99_us,%.1f\n", b.servOffP99)
		fmt.Fprintf(&sb, "serving_walon_write_p50_us,%.1f\n", b.servOnP50)
		fmt.Fprintf(&sb, "serving_walon_write_p99_us,%.1f\n", b.servOnP99)
		fmt.Fprintf(&sb, "serving_walon_write_p99_overhead_pct,%.1f\n", b.servP99Pct())
		fmt.Fprintf(&sb, "serving_waloff_mixed_p50_us,%.1f\n", b.mixOffP50)
		fmt.Fprintf(&sb, "serving_waloff_mixed_p99_us,%.1f\n", b.mixOffP99)
		fmt.Fprintf(&sb, "serving_walon_mixed_p50_us,%.1f\n", b.mixOnP50)
		fmt.Fprintf(&sb, "serving_walon_mixed_p99_us,%.1f\n", b.mixOnP99)
		fmt.Fprintf(&sb, "serving_walon_mixed_p99_overhead_pct,%.1f\n", b.mixP99Pct())
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest: csv:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
