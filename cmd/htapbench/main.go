// Command htapbench regenerates the paper's Figure 2 (Section II-B): the
// four-panel experiment sweeping storage model, threading policy and
// compute platform over the TPC-C-style customer/item workload.
//
// Times are produced by the calibrated platform model (the documented
// substitution for the paper's i7-6700HQ + CUDA testbed; see DESIGN.md
// Section 2). Pass -verify to additionally execute every configuration
// for real at a reduced scale and cross-check all answers against the
// workload's closed forms.
//
// The extra "selectivity" panel executes the zone-map data-skipping
// sweep for real, the "devicecache" panel the device-resident
// fragment-cache sweep (warm scans cost zero bus bytes; a write re-ships
// one fragment), the "compression" panel the compressed-domain
// execution sweep (four data shapes at their achieved ratios, host and
// device, dense and compressed), the "fusion" panel the fused
// predicate→group-by sweep (group cardinality × selectivity, fused
// one-pass pipelines against materialize-then-aggregate baselines on
// host, device and in the compressed domain), and the "multidevice"
// panel the cross-device scheduler sweep (1/2/4 cards × row/col layout ×
// selectivity, cold and warm passes with fleet-wide bus metering), and
// the "serving" panel the network serving sweep (the warp-style load
// harness over loopback HTTP, concurrency × batched/unbatched, wall-clock
// QPS and per-class tail latency), and the "resultcache" panel the
// version-stamped result-cache sweep (twin engines under read-heavy,
// mixed and write-storm legs, every cached answer bit-compared against
// uncached execution): -panel <name> prints one alone, and -json
// always embeds all of them beside the four model panels.
//
// Usage:
//
//	htapbench [-panel 0-4|selectivity|devicecache|compression|fusion|multidevice|serving|resultcache] [-csv] [-json] [-verify] [-verify-rows N] [-metrics]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"hybridstore"
	"hybridstore/internal/figures"
	"hybridstore/internal/figures/servingfig"
)

func main() {
	panel := flag.String("panel", "0", "panel to regenerate (1-4, \"selectivity\", \"devicecache\", \"compression\", \"fusion\" or \"multidevice\"), 0 = all model panels")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.Bool("json", false, "also write panels+findings to BENCH_fig2.json for perf tracking")
	verify := flag.Bool("verify", false, "also execute every configuration for real and cross-check answers")
	verifyRows := flag.Uint64("verify-rows", 100_000, "row count for -verify")
	real := flag.Bool("real", false, "also measure the single-threaded host series with real wall-clock execution")
	realRows := flag.Uint64("real-rows", 2_000_000, "largest row count for -real (sweep is 1/4, 1/2, 1x)")
	metrics := flag.Bool("metrics", false, "run a mixed HTAP workload on the reference engine and report its observability snapshot (with -json, added as an \"obs\" section)")
	metricsRows := flag.Uint64("metrics-rows", 40_000, "row count for the -metrics mixed workload (keep above one morsel, 16384, so scans exercise the shared pool)")
	selRows := flag.Uint64("selectivity-rows", 640_000, "row count for the selectivity sweep (64 fragments)")
	cacheRows := flag.Uint64("devicecache-rows", 262_144, "row count for the devicecache sweep (64 fragments)")
	compRows := flag.Uint64("compression-rows", 4_194_304, "row count for the compression sweep (64 fragments; keep fragments large enough to amortize the decode kernel)")
	fusionRows := flag.Uint64("fusion-rows", 1_048_576, "row count for the fusion sweep (64 fragments; keep the two-column working set beyond L3 so gathers price at miss latency)")
	multiRows := flag.Uint64("multidevice-rows", 1_048_576, "row count for the multidevice sweep (64 fragments hash-sharded across the fleet)")
	servingRows := flag.Uint64("serving-rows", 4096, "row count for the serving sweep's warm device-cached item table")
	resCacheRows := flag.Uint64("resultcache-rows", 262_144, "row count for the resultcache sweep's item table")
	resCacheQueries := flag.Int("resultcache-queries", 64, "timed query pairs per resultcache leg")
	servingLeg := flag.Duration("serving-leg", 1200*time.Millisecond, "wall-clock duration of each serving sweep leg")
	walDir := flag.String("wal", "", "fresh directory for the serving sweep's write-ahead log: the item table runs durably and the write lane prices group-committed fsyncs")
	flag.Parse()

	cfg := figures.Default()
	var sweep *figures.SelectivitySweep
	runSweep := func() *figures.SelectivitySweep {
		if sweep == nil {
			s, err := figures.MeasureSelectivity(*selRows, 64, figures.DefaultSelectivities(), 3)
			if err != nil {
				fmt.Fprintln(os.Stderr, "selectivity sweep failed:", err)
				os.Exit(1)
			}
			sweep = s
		}
		return sweep
	}
	var cacheSweep *figures.DeviceCacheSweep
	runCacheSweep := func() *figures.DeviceCacheSweep {
		if cacheSweep == nil {
			s, err := figures.MeasureDeviceCache(*cacheRows, 64, 3, 4)
			if err != nil {
				fmt.Fprintln(os.Stderr, "devicecache sweep failed:", err)
				os.Exit(1)
			}
			cacheSweep = s
		}
		return cacheSweep
	}
	var compSweep *figures.CompressionSweep
	runCompSweep := func() *figures.CompressionSweep {
		if compSweep == nil {
			s, err := figures.MeasureCompression(*compRows, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "compression sweep failed:", err)
				os.Exit(1)
			}
			compSweep = s
		}
		return compSweep
	}
	var fusionSweep *figures.FusionSweep
	runFusionSweep := func() *figures.FusionSweep {
		if fusionSweep == nil {
			s, err := figures.MeasureFusion(*fusionRows, 64, figures.DefaultFusionCards(), figures.DefaultFusionSelectivities())
			if err != nil {
				fmt.Fprintln(os.Stderr, "fusion sweep failed:", err)
				os.Exit(1)
			}
			fusionSweep = s
		}
		return fusionSweep
	}
	var multiSweep *figures.MultiDeviceSweep
	runMultiSweep := func() *figures.MultiDeviceSweep {
		if multiSweep == nil {
			s, err := figures.MeasureMultiDevice(*multiRows, 64, figures.DefaultMultiDeviceCounts(), figures.DefaultMultiDeviceSelectivities())
			if err != nil {
				fmt.Fprintln(os.Stderr, "multidevice sweep failed:", err)
				os.Exit(1)
			}
			multiSweep = s
		}
		return multiSweep
	}

	var servingSweep *servingfig.ServingSweep
	runServingSweep := func() *servingfig.ServingSweep {
		if servingSweep == nil {
			s, err := servingfig.MeasureServing(*servingRows, servingfig.DefaultServingConcurrencies(), *servingLeg, *walDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "serving sweep failed:", err)
				os.Exit(1)
			}
			servingSweep = s
		}
		return servingSweep
	}

	var resCacheSweep *figures.ResultCacheSweep
	runResCacheSweep := func() *figures.ResultCacheSweep {
		if resCacheSweep == nil {
			s, err := figures.MeasureResultCache(*resCacheRows, *resCacheQueries)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resultcache sweep failed:", err)
				os.Exit(1)
			}
			resCacheSweep = s
		}
		return resCacheSweep
	}

	var panels []figures.Panel
	switch *panel {
	case "selectivity":
		s := runSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "devicecache":
		s := runCacheSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "compression":
		s := runCompSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "fusion":
		s := runFusionSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "multidevice":
		s := runMultiSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "serving":
		s := runServingSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	case "resultcache":
		s := runResCacheSweep()
		if *csv {
			fmt.Print(s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	default:
		n, err := strconv.Atoi(*panel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htapbench: -panel wants 0-4, \"selectivity\", \"devicecache\", \"compression\", \"fusion\", \"multidevice\", \"serving\" or \"resultcache\", got %q\n", *panel)
			os.Exit(2)
		}
		panels, err = cfg.Panels(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for i, p := range panels {
			if i > 0 {
				fmt.Println()
			}
			if *csv {
				fmt.Printf("# panel %d: %s\n%s", p.Number, p.Title, p.CSV())
			} else {
				fmt.Print(p.Render())
			}
		}
	}

	f := cfg.Evaluate()
	fmt.Println()
	fmt.Println("paper findings (Section II-B):")
	fmt.Printf("  (i)   tiny inputs favour single-threaded execution: %v\n", f.TinyInputsFavourSingle)
	fmt.Printf("  (ii)  record-centric operations favour NSM:         %v\n", f.RecordCentricFavoursNSM)
	fmt.Printf("  (iii) attribute-centric operations favour DSM:      %v\n", f.AttrCentricFavoursDSM)
	fmt.Printf("  (iv)  device wins once the column is resident:      %v\n", f.DeviceWinsWhenResident)
	fmt.Printf("  (v)   morsel pool amortizes scheduling overhead:    %v\n", f.MorselAmortizesScheduling)

	var obsSnap *hybridstore.MetricsSnapshot
	if *metrics {
		snap, err := mixedWorkloadMetrics(*metricsRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics workload failed:", err)
			os.Exit(1)
		}
		obsSnap = &snap
		fmt.Println()
		printMetricsSummary(snap)
	}

	if *jsonOut {
		blob, err := json.MarshalIndent(struct {
			Panels      []figures.Panel
			Findings    figures.Findings
			Selectivity *figures.SelectivitySweep
			DeviceCache *figures.DeviceCacheSweep
			Compression *figures.CompressionSweep
			Fusion      *figures.FusionSweep
			MultiDevice *figures.MultiDeviceSweep
			Serving     *servingfig.ServingSweep
			ResultCache *figures.ResultCacheSweep
			Obs         *hybridstore.MetricsSnapshot `json:"obs,omitempty"`
		}{panels, f, runSweep(), runCacheSweep(), runCompSweep(), runFusionSweep(), runMultiSweep(), runServingSweep(), runResCacheSweep(), obsSnap}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json encoding failed:", err)
			os.Exit(1)
		}
		const path = "BENCH_fig2.json"
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json write failed:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d panels)\n", path, len(panels))
	}

	if *real {
		fmt.Println()
		sizes := []uint64{*realRows / 4, *realRows / 2, *realRows}
		p, err := figures.RealScanPanel(sizes, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "real measurement failed:", err)
			os.Exit(1)
		}
		fmt.Print(p.Render())
	}

	if *verify {
		fmt.Println()
		report, err := figures.Verify(*verifyRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verification failed:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if !report.AllOK() {
			os.Exit(1)
		}
	}
}

// mixedWorkloadMetrics drives the reference engine with one mixed HTAP
// round — bulk inserts, morsel-driven scans, point transactions
// (including a forced first-committer-wins conflict and an abort),
// layout adaptation, explicit device placement with device-side point
// gathers, and a version-store merge — then returns the resulting
// process-wide metrics snapshot.
func mixedWorkloadMetrics(rows uint64) (hybridstore.MetricsSnapshot, error) {
	var zero hybridstore.MetricsSnapshot
	hybridstore.ResetMetrics()
	db := hybridstore.Open(hybridstore.Options{
		Policy:          hybridstore.MorselDriven,
		DevicePlacement: true,
	})
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		return zero, err
	}
	defer tbl.Free()

	for i := uint64(0); i < rows; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			return zero, err
		}
	}
	// OLAP side: repeated attribute-centric scans on the shared pool
	// (these also feed the workload monitor its scan-dominance signal).
	for i := 0; i < 8; i++ {
		if _, err := tbl.SumFloat64(hybridstore.ItemPriceColumn); err != nil {
			return zero, err
		}
	}
	// OLTP side: autocommit point updates plus explicit transactions —
	// one clean commit, one forced first-committer-wins conflict, one
	// abort.
	for row := uint64(0); row < 64 && row < rows; row++ {
		if err := tbl.Update(row, hybridstore.ItemPriceColumn, hybridstore.FloatValue(9.99)); err != nil {
			return zero, err
		}
	}
	a, b := tbl.Begin(), tbl.Begin()
	if err := a.Update(0, hybridstore.ItemPriceColumn, hybridstore.FloatValue(1)); err != nil {
		return zero, err
	}
	if err := b.Update(0, hybridstore.ItemPriceColumn, hybridstore.FloatValue(2)); err != nil {
		return zero, err
	}
	if err := a.Commit(); err != nil {
		return zero, err
	}
	if err := b.Commit(); err == nil {
		return zero, fmt.Errorf("expected a write-write conflict, got none")
	}
	c := tbl.Begin()
	if err := c.Update(1, hybridstore.ItemPriceColumn, hybridstore.FloatValue(3)); err != nil {
		return zero, err
	}
	c.Abort()

	// Structural work: adaptation, explicit device placement, scans and
	// point gathers against the device-resident column, and the merge
	// pass that folds settled versions back into the base fragments.
	if _, err := tbl.Adapt(); err != nil {
		return zero, err
	}
	if err := tbl.PlaceColumn(hybridstore.ItemPriceColumn); err != nil {
		return zero, err
	}
	for i := 0; i < 4; i++ {
		if _, err := tbl.SumFloat64(hybridstore.ItemPriceColumn); err != nil {
			return zero, err
		}
	}
	// Point-read rows the OLTP phase did not touch: clean rows resolve
	// from the base fragments, so the reads gather the device-resident
	// price field over the bus.
	for row := uint64(2048); row < 2080 && row < rows; row++ {
		if _, err := tbl.Get(row); err != nil {
			return zero, err
		}
	}
	if err := tbl.Merge(); err != nil {
		return zero, err
	}
	return hybridstore.Metrics(), nil
}

// printMetricsSummary renders the headline counters of a snapshot.
func printMetricsSummary(s hybridstore.MetricsSnapshot) {
	fmt.Println("observability snapshot (mixed HTAP workload):")
	rows := []struct{ label, name string }{
		{"pool jobs submitted", "pool.jobs_submitted"},
		{"pool jobs inline", "pool.jobs_inline"},
		{"pool morsels by submitter", "pool.morsels_submitter"},
		{"pool morsels stolen", "pool.morsels_stolen"},
		{"device h2d bytes", "device.h2d_bytes"},
		{"device d2h bytes", "device.d2h_bytes"},
		{"device kernels", "device.kernels"},
		{"tx begins", "tx.begins"},
		{"tx commits", "tx.commits"},
		{"tx conflicts", "tx.conflicts"},
		{"tx aborts", "tx.aborts"},
		{"tx versions pruned", "tx.versions_pruned"},
		{"adapt runs", "core.adapt_runs"},
		{"freezes", "core.freezes"},
		{"column placements", "core.column_placements"},
	}
	for _, r := range rows {
		fmt.Printf("  %-26s %d\n", r.label, s.Counter(r.name))
	}
}
