// Command htapbench regenerates the paper's Figure 2 (Section II-B): the
// four-panel experiment sweeping storage model, threading policy and
// compute platform over the TPC-C-style customer/item workload.
//
// Times are produced by the calibrated platform model (the documented
// substitution for the paper's i7-6700HQ + CUDA testbed; see DESIGN.md
// Section 2). Pass -verify to additionally execute every configuration
// for real at a reduced scale and cross-check all answers against the
// workload's closed forms.
//
// Usage:
//
//	htapbench [-panel 0-4] [-csv] [-json] [-verify] [-verify-rows N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hybridstore/internal/figures"
)

func main() {
	panel := flag.Int("panel", 0, "panel to regenerate (1-4), 0 = all")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.Bool("json", false, "also write panels+findings to BENCH_fig2.json for perf tracking")
	verify := flag.Bool("verify", false, "also execute every configuration for real and cross-check answers")
	verifyRows := flag.Uint64("verify-rows", 100_000, "row count for -verify")
	real := flag.Bool("real", false, "also measure the single-threaded host series with real wall-clock execution")
	realRows := flag.Uint64("real-rows", 2_000_000, "largest row count for -real (sweep is 1/4, 1/2, 1x)")
	flag.Parse()

	cfg := figures.Default()
	panels, err := cfg.Panels(*panel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i, p := range panels {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# panel %d: %s\n%s", p.Number, p.Title, p.CSV())
		} else {
			fmt.Print(p.Render())
		}
	}

	f := cfg.Evaluate()
	fmt.Println()
	fmt.Println("paper findings (Section II-B):")
	fmt.Printf("  (i)   tiny inputs favour single-threaded execution: %v\n", f.TinyInputsFavourSingle)
	fmt.Printf("  (ii)  record-centric operations favour NSM:         %v\n", f.RecordCentricFavoursNSM)
	fmt.Printf("  (iii) attribute-centric operations favour DSM:      %v\n", f.AttrCentricFavoursDSM)
	fmt.Printf("  (iv)  device wins once the column is resident:      %v\n", f.DeviceWinsWhenResident)
	fmt.Printf("  (v)   morsel pool amortizes scheduling overhead:    %v\n", f.MorselAmortizesScheduling)

	if *jsonOut {
		blob, err := json.MarshalIndent(struct {
			Panels   []figures.Panel
			Findings figures.Findings
		}{panels, f}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json encoding failed:", err)
			os.Exit(1)
		}
		const path = "BENCH_fig2.json"
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json write failed:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d panels)\n", path, len(panels))
	}

	if *real {
		fmt.Println()
		sizes := []uint64{*realRows / 4, *realRows / 2, *realRows}
		p, err := figures.RealScanPanel(sizes, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "real measurement failed:", err)
			os.Exit(1)
		}
		fmt.Print(p.Render())
	}

	if *verify {
		fmt.Println()
		report, err := figures.Verify(*verifyRows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "verification failed:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if !report.AllOK() {
			os.Exit(1)
		}
	}
}
