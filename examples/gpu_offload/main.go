// GPU offload: reproduce the CoGaDB-style co-processing decision on the
// simulated device — sweep the item-table size, compare host and device
// scan costs (with and without the bus transfer), let the HyPE scheduler
// learn where to run, and show the all-or-nothing placement falling back
// to the host when the device memory is exhausted.
//
//	go run ./examples/gpu_offload
package main

import (
	"fmt"
	"log"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/cogadb"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func main() {
	fmt.Println("== cost model: where is the crossover? ==")
	host := perfmodel.DefaultHost()
	dev := perfmodel.DefaultDevice()
	fmt.Printf("%12s  %14s  %14s  %14s\n", "#rows", "host multi", "device+bus", "device resident")
	for _, n := range []int64{1e4, 1e5, 1e6, 1e7, 1e8} {
		h := host.ScanSumNs(n, 8, 8, host.Threads)
		dBus := dev.TransferNs(n*8) + dev.ReduceKernelNs(n, 8, 8, 1024, 512)
		dRes := dev.ReduceKernelNs(n, 8, 8, 1024, 512)
		fmt.Printf("%12d  %12.1fµs  %12.1fµs  %12.1fµs\n", n, h/1e3, dBus/1e3, dRes/1e3)
	}

	fmt.Println("\n== CoGaDB engine: HyPE learns the placement ==")
	env := engine.NewEnv()
	e := cogadb.New(env, 0.1)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		log.Fatal(err)
	}
	ct := tbl.(*cogadb.Table)
	defer ct.Free()
	const rows = 200_000
	if err := workload.Generate(rows, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := ct.Place(workload.ItemPriceCol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("price column placed on device (%d rows, %d KiB)\n", rows, rows*8/1024)
	for i := 0; i < 50; i++ {
		if _, err := ct.SumFloat64(workload.ItemPriceCol); err != nil {
			log.Fatal(err)
		}
	}
	cpu, gpu := ct.Runs()
	fmt.Printf("after 50 scans the scheduler ran %d on the CPU and %d on the GPU\n", cpu, gpu)
	fmt.Printf("simulated platform time: %.3f ms\n", env.Clock.ElapsedNs()/1e6)

	fmt.Println("\n== all-or-nothing placement under device-memory pressure ==")
	tiny := engine.NewEnv()
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = 512 << 10 // a 512 KiB "GPU"
	tiny.GPU = device.New(prof, tiny.Clock)
	e2 := cogadb.New(tiny, 0)
	tbl2, err := e2.Create("item", workload.ItemSchema())
	if err != nil {
		log.Fatal(err)
	}
	ct2 := tbl2.(*cogadb.Table)
	defer ct2.Free()
	if err := workload.Generate(rows, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct2.Insert(rec)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := ct2.Place(workload.ItemPriceCol); err != nil {
		fmt.Println("placement refused, column stays on host:", err)
	}
	sum, err := ct2.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fallback host scan still answers: sum = %.2f (expected %.2f)\n",
		sum, workload.ExpectedItemPriceSum(rows))
}
