// Adaptive HTAP: drive the reference engine through the workload shift
// the paper's introduction motivates — a transactional phase, then a
// shift to long-running analytics — and watch the storage engine
// re-organize its physical record layouts and compute-device assignment
// (Figure 1 of the paper) in response.
//
//	go run ./examples/adaptive_htap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hybridstore"
)

const rows = 120_000

func main() {
	db := hybridstore.Open(hybridstore.Options{
		ChunkRows:       16384,
		HotChunks:       2,
		DevicePlacement: true,
	})
	items, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer items.Free()

	fmt.Println("phase 0: bulk load", rows, "items")
	for i := uint64(0); i < rows; i++ {
		if _, err := items.Insert(hybridstore.Item(i)); err != nil {
			log.Fatal(err)
		}
	}
	report(db, items, "after load")

	// Phase 1: write-intensive OLTP — point reads and updates.
	fmt.Println("\nphase 1: transactional (point reads + updates)")
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		row := uint64(r.Int63n(rows))
		if i%3 == 0 {
			if err := items.Update(row, hybridstore.ItemPriceColumn,
				hybridstore.FloatValue(float64(r.Intn(100)))); err != nil {
				log.Fatal(err)
			}
		} else if _, err := items.Get(row); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := items.Adapt(); err != nil {
		log.Fatal(err)
	}
	if err := items.Merge(); err != nil {
		log.Fatal(err)
	}
	report(db, items, "after OLTP phase + adapt")

	// Phase 2: the workload shifts to analytics — repeated price scans.
	fmt.Println("\nphase 2: analytical (column scans)")
	before := db.SimulatedSeconds()
	for i := 0; i < 20; i++ {
		if _, err := items.SumFloat64(hybridstore.ItemPriceColumn); err != nil {
			log.Fatal(err)
		}
	}
	scanCostBefore := db.SimulatedSeconds() - before

	changed, err := items.Adapt()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advisor re-organized:", changed)
	report(db, items, "after analytic phase + adapt")

	before = db.SimulatedSeconds()
	for i := 0; i < 20; i++ {
		if _, err := items.SumFloat64(hybridstore.ItemPriceColumn); err != nil {
			log.Fatal(err)
		}
	}
	scanCostAfter := db.SimulatedSeconds() - before
	fmt.Printf("\n20 price scans, simulated: %.3f ms before adaptation, %.3f ms after (%.1fx)\n",
		scanCostBefore*1e3, scanCostAfter*1e3, scanCostBefore/scanCostAfter)

	// The answers never changed — only the physical organization did.
	sum, err := items.SumFloat64(hybridstore.ItemPriceColumn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final checksum of prices: %.2f\n", sum)
}

func report(db *hybridstore.DB, t *hybridstore.Table, label string) {
	st := t.Stats()
	fmt.Printf("[%s] hot=%d cold=%d freezes=%d adapts=%d pendingVersions=%d device=%v simTime=%.3fms\n",
		label, st.HotChunks, st.ColdChunks, st.Freezes, st.Adapts,
		st.PendingVersions, st.DeviceColumns, db.SimulatedSeconds()*1e3)
}
