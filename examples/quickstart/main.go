// Quickstart: open a hybridstore DB, create a table, run transactional
// and analytical operations against it, and inspect how the engine laid
// the data out.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hybridstore"
)

func main() {
	// A DB is one simulated CPU/GPU platform plus the paper's reference
	// HTAP engine. Small chunks keep the demo output interesting.
	db := hybridstore.Open(hybridstore.Options{
		ChunkRows:       256,
		HotChunks:       1,
		DevicePlacement: true,
	})

	sch, err := hybridstore.NewSchema(
		hybridstore.Int64Attr("id"),
		hybridstore.CharAttr("owner", 8),
		hybridstore.Float64Attr("balance"),
	)
	if err != nil {
		log.Fatal(err)
	}
	accounts, err := db.CreateTable("accounts", sch)
	if err != nil {
		log.Fatal(err)
	}
	defer accounts.Free()

	// OLTP: inserts and point operations.
	for i := 0; i < 2000; i++ {
		if _, err := accounts.Insert(hybridstore.Record{
			hybridstore.IntValue(int64(i)),
			hybridstore.CharValue(fmt.Sprintf("acct%03d", i%1000)),
			hybridstore.FloatValue(float64(i % 500)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := accounts.Update(42, 2, hybridstore.FloatValue(1_000_000)); err != nil {
		log.Fatal(err)
	}
	rec, err := accounts.Get(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("account 42:", rec)

	// A snapshot-isolated transfer.
	txn := accounts.Begin()
	from, _ := txn.Read(42)
	to, _ := txn.Read(43)
	txn.Update(42, 2, hybridstore.FloatValue(from[2].F-100))
	txn.Update(43, 2, hybridstore.FloatValue(to[2].F+100))
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}

	// OLAP: a full-column aggregate over an MVCC snapshot — it never
	// blocks or observes concurrent writers.
	total, err := accounts.SumFloat64(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total balance: %.0f\n", total)

	// Let the engine adapt its layout to what it observed, then look at
	// the physical state and the derived classification.
	if _, err := accounts.Adapt(); err != nil {
		log.Fatal(err)
	}
	st := accounts.Stats()
	fmt.Printf("physical state: %d rows, %d hot + %d cold chunks, %d freezes, device columns %v\n",
		st.Rows, st.HotChunks, st.ColdChunks, st.Freezes, st.DeviceColumns)

	c, err := accounts.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification: %s / %s / %s / %s+%s %s / %s / %s\n",
		c.Handling, c.Flexibility, c.Adaptability,
		c.Working, c.Primary, c.Locality, c.Linearization, c.Scheme)
	fmt.Printf("simulated platform time: %.3f ms\n", db.SimulatedSeconds()*1e3)
}
