// Metrics: run a small hybrid workload and dump the library's
// process-wide observability registry — an expvar-style JSON snapshot of
// every counter, gauge and latency histogram, plus the recent structural
// spans (freeze, adapt, merge) with the decisions they recorded.
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"log"
	"os"

	"hybridstore"
)

func main() {
	db := hybridstore.Open(hybridstore.Options{
		ChunkRows:       512,
		HotChunks:       1,
		DevicePlacement: true,
		Policy:          hybridstore.MorselDriven,
	})
	items, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer items.Free()

	// A little of everything: inserts freeze chunks, scans feed the
	// advisor, updates exercise MVCC, Adapt and Merge do structural work.
	for i := 0; i < 4096; i++ {
		if _, err := items.Insert(hybridstore.Item(uint64(i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := items.SumFloat64(hybridstore.ItemPriceColumn); err != nil {
			log.Fatal(err)
		}
	}
	for row := uint64(0); row < 32; row++ {
		if err := items.Update(row, hybridstore.ItemPriceColumn, hybridstore.FloatValue(1.25)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := items.Adapt(); err != nil {
		log.Fatal(err)
	}
	if err := items.Merge(); err != nil {
		log.Fatal(err)
	}

	// Structured access: pick single metrics out of a snapshot...
	snap := hybridstore.Metrics()
	fmt.Fprintf(os.Stderr, "tx.commits=%d core.freezes=%d pool.jobs_inline=%d\n",
		snap.Counter("tx.commits"), snap.Counter("core.freezes"),
		snap.Counter("pool.jobs_inline"))

	// ...or dump the whole registry as one JSON object (pipe through jq,
	// scrape it, or diff two dumps around a workload phase).
	if err := hybridstore.WriteMetricsJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
