// Lineage: drive the L-Store engine through its two signature features —
// historic querying over lineage-linked tail records, and the merge pass
// that seals read-optimized, compressed base pages (paper Section
// IV-B.4). A small audit scenario: an account's price is corrected three
// times; every prior state stays queryable until a merge consolidates
// history into fresh compressed base pages.
//
//	go run ./examples/lineage
package main

import (
	"fmt"
	"log"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func main() {
	env := engine.NewEnv()
	e := lstore.New(env)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		log.Fatal(err)
	}
	lt := tbl.(*lstore.Table)
	defer lt.Free()

	const rows = 10_000
	if err := workload.Generate(rows, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := lt.Insert(rec)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d items; tail=%d sealed=%d\n", lt.Rows(), lt.TailLength(), lt.SealedRows())

	// Three corrections to item 42's price — each appends a tail record
	// linked to its predecessor; the base page is never written.
	for _, price := range []float64{19.99, 24.99, 21.49} {
		if err := lt.Update(42, workload.ItemPriceCol, schema.FloatValue(price)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nafter 3 corrections (tail length %d), item 42's history:\n", lt.TailLength())
	for back := 0; back <= 3; back++ {
		rec, err := lt.GetVersion(42, back)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d updates ago", back)
		if back == 0 {
			label = "current"
		}
		fmt.Printf("  %-14s price = %6.2f\n", label, rec[workload.ItemPriceCol].F)
	}

	// Analytics run against the current state (tail values patched over
	// the base scan).
	sum, err := lt.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum of all prices (tail-patched): %.2f\n", sum)

	// The merge consolidates history and seals compressed base pages.
	if err := lt.Merge(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter merge: sealed rows = %d, tail = %d, base compression = %.2fx\n",
		lt.SealedRows(), lt.TailLength(), lt.CompressionRatio())
	sum2, err := lt.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum over sealed pages: %.2f (unchanged: %v)\n", sum2, sum == sum2)
	rec, _ := lt.GetVersion(42, 99)
	fmt.Printf("history consolidated: even 99 updates back now reads %.2f\n",
		rec[workload.ItemPriceCol].F)
}
