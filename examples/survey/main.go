// Survey: run the identical HTAP micro-workload over every surveyed
// storage engine plus the reference engine, verify that all of them
// return the same answers, and print each engine's simulated cost and its
// derived classification — the paper's Table 1 produced from running
// systems instead of reading papers.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/all"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

const rows = 5_000

func main() {
	fmt.Printf("workload: %d items, 500 point reads, 250 updates, 10 full scans, 1×150-record materialization\n\n", rows)
	fmt.Printf("%-18s %12s %12s %14s  %s\n", "engine", "answers", "sim time", "workload fit", "classification highlights")

	env0 := engine.NewEnv()
	engines := all.Engines(env0)
	engines = append(engines, core.New(env0, core.Options{ChunkRows: 1024, HotChunks: 2}))

	for _, e := range engines {
		// Every engine gets a fresh platform so simulated costs compare.
		env := engine.NewEnv()
		fresh := all.ByName(env, e.Name())
		if fresh == nil {
			fresh = core.New(env, core.Options{ChunkRows: 1024, HotChunks: 2})
		}
		if err := run(env, fresh); err != nil {
			log.Fatalf("%s: %v", fresh.Name(), err)
		}
	}
	fmt.Println("\nall engines returned identical answers; none of the surveyed ten combines")
	fmt.Println("HTAP workload support with CPU/GPU cooperation — the paper's 'not yet'.")
}

func run(env *engine.Env, e engine.Engine) error {
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		return err
	}
	defer tbl.Free()
	if err := workload.Generate(rows, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(rec)
		return err
	}); err != nil {
		return err
	}

	r := rand.New(rand.NewSource(99))
	expect := workload.ExpectedItemPriceSum(rows)
	// Point reads.
	for i := 0; i < 500; i++ {
		if _, err := tbl.Get(uint64(r.Int63n(rows))); err != nil {
			return err
		}
	}
	// Updates (tracked against the expected sum).
	for i := 0; i < 250; i++ {
		row := uint64(r.Int63n(rows))
		old, err := tbl.Get(row)
		if err != nil {
			return err
		}
		nv := float64(r.Intn(100))
		if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(nv)); err != nil {
			return err
		}
		expect += nv - old[workload.ItemPriceCol].F
	}
	// Scans.
	var sum float64
	for i := 0; i < 10; i++ {
		if sum, err = tbl.SumFloat64(workload.ItemPriceCol); err != nil {
			return err
		}
	}
	// Materialization.
	if _, err := tbl.Materialize(workload.PositionList(r, 150, rows)); err != nil {
		return err
	}

	ok := "ok"
	if math.Abs(sum-expect) > 1e-6 {
		ok = "MISMATCH"
	}
	c, err := engine.Classify(e, tbl)
	if err != nil {
		return err
	}
	fit := c.Workloads.String()
	if c.Processors.String() != "CPU" {
		fit += "+" + c.Processors.String()
	}
	fmt.Printf("%-18s %12s %10.3fms %14s  %s, %s, %s\n",
		e.Name(), ok, env.Clock.ElapsedNs()/1e6, fit,
		c.Flexibility, c.Adaptability, c.Linearization)
	return nil
}
