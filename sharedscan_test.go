package hybridstore

import (
	"math"
	"testing"
)

// TestSharedScanMatchesSoloFacade is the end-to-end bit-identity
// property for the batching substrate: SumFloat64WhereMulti must answer
// every predicate with exactly the bits SumFloat64Where produces, across
// storage configurations (plain host, device cache, compression, device
// placement, multi-card) and with unmerged MVCC deltas in flight.
func TestSharedScanMatchesSoloFacade(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"host", Options{ChunkRows: 128, HotChunks: 1}},
		{"devicecache", Options{ChunkRows: 128, HotChunks: 1, DeviceCache: true}},
		{"compress+cache", Options{ChunkRows: 128, HotChunks: 1, DeviceCache: true, Compress: true}},
		{"placement", Options{ChunkRows: 128, HotChunks: 1, DevicePlacement: true}},
		{"fleet", Options{ChunkRows: 128, HotChunks: 1, DeviceCache: true, Devices: 2}},
	}
	preds := []FloatPred{
		LtFloat(25),
		GtFloat(50),
		BetweenFloat(10, 60),
		EqFloat(42),
		BetweenFloat(2000, 3000), // pruned everywhere
		LtFloat(80),
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			db := Open(cfg.opts)
			tbl, err := db.CreateTable("item", ItemSchema())
			if err != nil {
				t.Fatal(err)
			}
			defer tbl.Free()
			const rows = 1000
			for i := uint64(0); i < rows; i++ {
				if _, err := tbl.Insert(Item(i)); err != nil {
					t.Fatal(err)
				}
			}
			if cfg.opts.DevicePlacement {
				if err := tbl.PlaceColumn(ItemPriceColumn); err != nil {
					t.Fatal(err)
				}
			}
			// Unmerged deltas: the patch loop must agree per predicate.
			for i := 0; i < rows; i += 37 {
				if err := tbl.Update(uint64(i), ItemPriceColumn, FloatValue(float64(i%97))); err != nil {
					t.Fatal(err)
				}
			}
			// Two rounds so the second hits warm device-cache images.
			for round := 0; round < 2; round++ {
				sums, counts, err := tbl.SumFloat64WhereMulti(ItemPriceColumn, preds)
				if err != nil {
					t.Fatal(err)
				}
				if len(sums) != len(preds) || len(counts) != len(preds) {
					t.Fatalf("result arity %d/%d, want %d", len(sums), len(counts), len(preds))
				}
				for k, p := range preds {
					ws, wn, err := tbl.SumFloat64Where(ItemPriceColumn, p)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(sums[k]) != math.Float64bits(ws) || counts[k] != wn {
						t.Fatalf("round %d pred %d (%v): shared (%v, %d) != solo (%v, %d)",
							round, k, p, sums[k], counts[k], ws, wn)
					}
				}
			}
		})
	}
}

// TestTableRegistry pins the name lookup the serving layer binds
// prepared statements through.
func TestTableRegistry(t *testing.T) {
	db := Open(Options{})
	if db.Table("nope") != nil {
		t.Fatal("lookup of absent table returned non-nil")
	}
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	if got := db.Table("item"); got != tbl {
		t.Fatalf("Table(item) = %p, want %p", got, tbl)
	}
}
