package hybridstore_test

import (
	"fmt"

	"hybridstore"
)

// Example shows the end-to-end HTAP flow: transactional point operations
// and snapshot-isolated analytics over one adaptively-organized table.
func Example() {
	db := hybridstore.Open(hybridstore.Options{})
	sch, _ := hybridstore.NewSchema(
		hybridstore.Int64Attr("id"),
		hybridstore.Float64Attr("balance"),
	)
	accounts, _ := db.CreateTable("accounts", sch)
	defer accounts.Free()

	for i := int64(0); i < 4; i++ {
		accounts.Insert(hybridstore.Record{
			hybridstore.IntValue(i), hybridstore.FloatValue(float64(100 * i)),
		})
	}

	// A snapshot-isolated transfer.
	txn := accounts.Begin()
	from, _ := txn.ReadByPK(3)
	to, _ := txn.ReadByPK(0)
	txn.Update(3, 1, hybridstore.FloatValue(from[1].F-50))
	txn.Update(0, 1, hybridstore.FloatValue(to[1].F+50))
	if err := txn.Commit(); err != nil {
		fmt.Println("conflict:", err)
		return
	}

	total, _ := accounts.SumFloat64(1)
	rec, _ := accounts.GetByPK(3)
	fmt.Printf("total=%v account3=%v\n", total, rec[1].F)
	// Output: total=600 account3=250
}
