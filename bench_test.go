package hybridstore

// The benchmark harness: one bench family per table/figure of the paper
// plus the ablations called out in DESIGN.md.
//
// Figure-2 benches execute the real operators over real layouts at a
// laptop-scale row count (BenchRows) and measure wall time; the effects
// that are hardware-independent — NSM vs DSM locality, thread-management
// overhead on tiny inputs, bulk vs tuple-at-a-time — are physically real
// here. Each bench additionally reports the calibrated model's simulated
// time for the paper-scale configuration as the "sim_ms/op" metric, which
// is what cmd/htapbench sweeps into the full figure.

import (
	"math/rand"
	"sync"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/all"
	"hybridstore/internal/exec"
	"hybridstore/internal/figures"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// BenchRows is the real-execution scale of the Figure-2 benches.
const BenchRows = 2_000_000

// PaperRows is the paper-scale size the simulated metric is priced at.
const PaperRows = 50_000_000

// fixtures are built once and shared across benches.
var (
	fixOnce sync.Once
	fix     struct {
		itemsRow, itemsCol *layout.Layout
		custRow, custCol   *layout.Layout
		itemPositions      []uint64
		custPositions      []uint64
		gpu                *device.GPU
		priceBuf           *device.Buffer
	}
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		host := mem.NewAllocator(mem.Host, 0)
		items := workload.ItemSchema()
		customers := workload.CustomerSchema()
		var err error
		if fix.itemsRow, err = layout.Horizontal(host, "row", items, BenchRows, BenchRows, layout.NSM); err != nil {
			panic(err)
		}
		fix.itemsCol, err = layout.Vertical(host, "col", items, groups(items.Arity()), BenchRows,
			func([]int) layout.Linearization { return layout.Direct })
		if err != nil {
			panic(err)
		}
		if fix.custRow, err = layout.Horizontal(host, "row", customers, BenchRows, BenchRows, layout.NSM); err != nil {
			panic(err)
		}
		fix.custCol, err = layout.Vertical(host, "col", customers, groups(customers.Arity()), BenchRows,
			func([]int) layout.Linearization { return layout.Direct })
		if err != nil {
			panic(err)
		}
		fill := func(l *layout.Layout, gen func(uint64) schema.Record, n uint64) {
			if err := workload.Generate(n, gen, func(i uint64, rec schema.Record) error {
				for _, f := range l.Fragments() {
					vals := make([]schema.Value, 0, f.Arity())
					for _, c := range f.Cols() {
						vals = append(vals, rec[c])
					}
					if err := f.AppendTuplet(vals); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				panic(err)
			}
		}
		fill(fix.itemsRow, workload.Item, BenchRows)
		fill(fix.itemsCol, workload.Item, BenchRows)
		fill(fix.custRow, workload.Customer, BenchRows)
		fill(fix.custCol, workload.Customer, BenchRows)

		r := rand.New(rand.NewSource(2017))
		fix.itemPositions = workload.PositionList(r, figures.K, BenchRows)
		fix.custPositions = workload.PositionList(r, figures.K, BenchRows)

		// Device-resident price column.
		fix.gpu = device.New(perfmodel.DefaultDevice(), nil)
		pieces, err := exec.ColumnView(fix.itemsCol, workload.ItemPriceCol, BenchRows)
		if err != nil {
			panic(err)
		}
		v := pieces[0].Vec
		if fix.priceBuf, err = fix.gpu.Alloc(v.Len * v.Size); err != nil {
			panic(err)
		}
		if err := fix.gpu.CopyToDevice(fix.priceBuf, 0, v.Data[v.Base:v.Base+v.Len*v.Size]); err != nil {
			panic(err)
		}
	})
}

func groups(arity int) [][]int {
	out := make([][]int, arity)
	for i := range out {
		out[i] = []int{i}
	}
	return out
}

// reportSim attaches the paper-scale simulated time for the configuration.
func reportSim(b *testing.B, ns float64) {
	b.ReportMetric(ns/1e6, "sim_ms/op")
}

// --- Figure 2 / panel 1: materialize 150 customers -----------------------

func benchMaterialize(b *testing.B, l *layout.Layout, cfg exec.Config, spread int) {
	fixtures(b)
	h := perfmodel.DefaultHost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Materialize(cfg, l, fix.custPositions); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	switch cfg.Policy {
	case exec.MultiThreaded:
		reportSim(b, h.MaterializeNs(figures.K, PaperRows, figures.CustomerWidth, spread, h.Threads))
	case exec.MorselDriven:
		reportSim(b, h.MaterializeMorselNs(figures.K, PaperRows, figures.CustomerWidth, spread, h.Threads))
	default:
		reportSim(b, h.MaterializeNs(figures.K, PaperRows, figures.CustomerWidth, spread, 1))
	}
}

func BenchmarkFig2Panel1RowSingle(b *testing.B) {
	benchMaterialize(b, fix1(b).custRow, exec.Single(), 1)
}
func BenchmarkFig2Panel1RowMulti(b *testing.B) {
	benchMaterialize(b, fix1(b).custRow, exec.MultiN(8), 1)
}
func BenchmarkFig2Panel1ColSingle(b *testing.B) {
	benchMaterialize(b, fix1(b).custCol, exec.Single(), figures.CustomerArity)
}
func BenchmarkFig2Panel1ColMulti(b *testing.B) {
	benchMaterialize(b, fix1(b).custCol, exec.MultiN(8), figures.CustomerArity)
}
func BenchmarkFig2Panel1RowMorsel(b *testing.B) {
	benchMaterialize(b, fix1(b).custRow, exec.Morsel(), 1)
}
func BenchmarkFig2Panel1ColMorsel(b *testing.B) {
	benchMaterialize(b, fix1(b).custCol, exec.Morsel(), figures.CustomerArity)
}

// fix1 forces fixture construction before taking struct fields.
func fix1(b *testing.B) *struct {
	itemsRow, itemsCol *layout.Layout
	custRow, custCol   *layout.Layout
	itemPositions      []uint64
	custPositions      []uint64
	gpu                *device.GPU
	priceBuf           *device.Buffer
} {
	fixtures(b)
	return &fix
}

// --- Figure 2 / panel 2: sum prices of 150 items --------------------------

func benchSum150(b *testing.B, l *layout.Layout, cfg exec.Config, width int) {
	fixtures(b)
	h := perfmodel.DefaultHost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := exec.Materialize(cfg, l, fix.itemPositions)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, rec := range recs {
			sum += rec[workload.ItemPriceCol].F
		}
		if sum <= 0 {
			b.Fatal("bad sum")
		}
	}
	b.StopTimer()
	switch cfg.Policy {
	case exec.MultiThreaded:
		reportSim(b, h.MaterializeNs(figures.K, PaperRows, width, 1, h.Threads))
	case exec.MorselDriven:
		reportSim(b, h.MaterializeMorselNs(figures.K, PaperRows, width, 1, h.Threads))
	default:
		reportSim(b, h.MaterializeNs(figures.K, PaperRows, width, 1, 1))
	}
}

func BenchmarkFig2Panel2RowSingle(b *testing.B) {
	benchSum150(b, fix1(b).itemsRow, exec.Single(), figures.ItemWidth)
}
func BenchmarkFig2Panel2RowMulti(b *testing.B) {
	benchSum150(b, fix1(b).itemsRow, exec.MultiN(8), figures.ItemWidth)
}
func BenchmarkFig2Panel2ColSingle(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.Single(), figures.PriceSize)
}
func BenchmarkFig2Panel2ColMulti(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.MultiN(8), figures.PriceSize)
}
func BenchmarkFig2Panel2RowMorsel(b *testing.B) {
	benchSum150(b, fix1(b).itemsRow, exec.Morsel(), figures.ItemWidth)
}
func BenchmarkFig2Panel2ColMorsel(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.Morsel(), figures.PriceSize)
}

// --- Figure 2 / panels 3-4: sum all prices --------------------------------

func benchFullScan(b *testing.B, l *layout.Layout, cfg exec.Config, stride int) {
	fixtures(b)
	pieces, err := exec.ColumnView(l, workload.ItemPriceCol, BenchRows)
	if err != nil {
		b.Fatal(err)
	}
	h := perfmodel.DefaultHost()
	want := workload.ExpectedItemPriceSum(BenchRows)
	b.SetBytes(int64(h.StridedBytes(BenchRows, figures.PriceSize, stride)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := exec.SumFloat64(cfg, pieces)
		if err != nil {
			b.Fatal(err)
		}
		if sum < want-1 || sum > want+1 {
			b.Fatalf("sum = %v", sum)
		}
	}
	b.StopTimer()
	switch cfg.Policy {
	case exec.MultiThreaded:
		reportSim(b, h.ScanSumNs(PaperRows, figures.PriceSize, stride, h.Threads))
	case exec.MorselDriven:
		reportSim(b, h.ScanSumMorselNs(PaperRows, figures.PriceSize, stride, h.Threads))
	default:
		reportSim(b, h.ScanSumNs(PaperRows, figures.PriceSize, stride, 1))
	}
}

func BenchmarkFig2Panel3RowSingle(b *testing.B) {
	benchFullScan(b, fix1(b).itemsRow, exec.Single(), figures.ItemWidth)
}
func BenchmarkFig2Panel3RowMulti(b *testing.B) {
	benchFullScan(b, fix1(b).itemsRow, exec.MultiN(8), figures.ItemWidth)
}
func BenchmarkFig2Panel3ColSingle(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.Single(), figures.PriceSize)
}
func BenchmarkFig2Panel3ColMulti(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.MultiN(8), figures.PriceSize)
}
func BenchmarkFig2Panel3RowMorsel(b *testing.B) {
	benchFullScan(b, fix1(b).itemsRow, exec.Morsel(), figures.ItemWidth)
}
func BenchmarkFig2Panel3ColMorsel(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.Morsel(), figures.PriceSize)
}

// --- Morsel vs blockwise (finding v) --------------------------------------
//
// The acceptance pair behind the MorselDriven policy: on small-result
// operators the resident pool must clearly beat spawning the paper's
// eight blockwise workers (the scheduling cost is the whole bill), and
// on full scans it must hold the blockwise plateau.

// benchTinyAggregate sums a 150-value column view — the pure
// scheduling-overhead microbenchmark behind finding (v): the work is a
// few hundred nanoseconds, so the executor's dispatch cost dominates.
func benchTinyAggregate(b *testing.B, cfg exec.Config) {
	fixtures(b)
	pieces, err := exec.ColumnView(fix.itemsCol, workload.ItemPriceCol, figures.K)
	if err != nil {
		b.Fatal(err)
	}
	h := perfmodel.DefaultHost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := exec.SumFloat64(cfg, pieces)
		if err != nil {
			b.Fatal(err)
		}
		if sum <= 0 {
			b.Fatal("bad sum")
		}
	}
	b.StopTimer()
	switch cfg.Policy {
	case exec.MultiThreaded:
		reportSim(b, h.ScanSumNs(figures.K, figures.PriceSize, figures.PriceSize, h.Threads))
	case exec.MorselDriven:
		reportSim(b, h.ScanSumMorselNs(figures.K, figures.PriceSize, figures.PriceSize, h.Threads))
	default:
		reportSim(b, h.ScanSumNs(figures.K, figures.PriceSize, figures.PriceSize, 1))
	}
}

// benchSelect filters the full price column at low selectivity
// (2 in 10_000): a full scan whose tiny result exercises the pooled
// position-list buffers.
func benchSelect(b *testing.B, cfg exec.Config) {
	fixtures(b)
	pieces, err := exec.ColumnView(fix.itemsCol, workload.ItemPriceCol, BenchRows)
	if err != nil {
		b.Fatal(err)
	}
	// ItemPrice(i) = (i%10000)/100 + 1, so x < 1.02 matches i%10000 < 2.
	const want = 2 * (BenchRows / 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, err := exec.SelectFloat64(cfg, pieces, func(x float64) bool { return x < 1.02 })
		if err != nil {
			b.Fatal(err)
		}
		if len(pos) != want {
			b.Fatalf("matches = %d, want %d", len(pos), want)
		}
	}
}

func BenchmarkMorselVsBlockwiseTinyAggMorsel(b *testing.B) {
	benchTinyAggregate(b, exec.Morsel())
}
func BenchmarkMorselVsBlockwiseTinyAggBlockwise(b *testing.B) {
	benchTinyAggregate(b, exec.MultiN(8))
}
func BenchmarkMorselVsBlockwiseSum150Morsel(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.Morsel(), figures.PriceSize)
}
func BenchmarkMorselVsBlockwiseSum150Blockwise(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.MultiN(8), figures.PriceSize)
}
func BenchmarkMorselVsBlockwiseMaterializeMorsel(b *testing.B) {
	benchMaterialize(b, fix1(b).custRow, exec.Morsel(), 1)
}
func BenchmarkMorselVsBlockwiseMaterializeBlockwise(b *testing.B) {
	benchMaterialize(b, fix1(b).custRow, exec.MultiN(8), 1)
}
func BenchmarkMorselVsBlockwiseFullScanMorsel(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.Morsel(), figures.PriceSize)
}
func BenchmarkMorselVsBlockwiseFullScanBlockwise(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.MultiN(8), figures.PriceSize)
}
func BenchmarkMorselVsBlockwiseSelectMorsel(b *testing.B) {
	benchSelect(b, exec.Morsel())
}
func BenchmarkMorselVsBlockwiseSelectBlockwise(b *testing.B) {
	benchSelect(b, exec.MultiN(8))
}

// BenchmarkFig2Panel3Device includes the host→device transfer every
// iteration (the panel-3 device series).
func BenchmarkFig2Panel3Device(b *testing.B) {
	fixtures(b)
	d := perfmodel.DefaultDevice()
	pieces, err := exec.ColumnView(fix.itemsCol, workload.ItemPriceCol, BenchRows)
	if err != nil {
		b.Fatal(err)
	}
	v := pieces[0].Vec
	want := workload.ExpectedItemPriceSum(BenchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fix.gpu.CopyToDevice(fix.priceBuf, 0, v.Data[v.Base:v.Base+v.Len*v.Size]); err != nil {
			b.Fatal(err)
		}
		sum, err := fix.gpu.ReduceSumFloat64(
			device.Vec{Buf: fix.priceBuf, Stride: 8, Size: 8, Len: BenchRows},
			device.DefaultReduceConfig())
		if err != nil {
			b.Fatal(err)
		}
		if sum < want-1 || sum > want+1 {
			b.Fatalf("sum = %v", sum)
		}
	}
	b.StopTimer()
	reportSim(b, d.TransferNs(PaperRows*8)+d.ReduceKernelNs(PaperRows, 8, 8, 1024, 512))
}

// BenchmarkFig2Panel4Device runs over the resident column (the panel-4
// series: transfer costs excluded).
func BenchmarkFig2Panel4Device(b *testing.B) {
	fixtures(b)
	d := perfmodel.DefaultDevice()
	want := workload.ExpectedItemPriceSum(BenchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := fix.gpu.ReduceSumFloat64(
			device.Vec{Buf: fix.priceBuf, Stride: 8, Size: 8, Len: BenchRows},
			device.DefaultReduceConfig())
		if err != nil {
			b.Fatal(err)
		}
		if sum < want-1 || sum > want+1 {
			b.Fatalf("sum = %v", sum)
		}
	}
	b.StopTimer()
	reportSim(b, d.ReduceKernelNs(PaperRows, 8, 8, 1024, 512))
}

// --- Table 1: survey classification ---------------------------------------

// BenchmarkTable1Classify builds, loads and classifies all ten surveyed
// engines — the cost of regenerating the survey table from live systems.
func BenchmarkTable1Classify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := engine.NewEnv()
		var rows []taxonomy.Classification
		for _, e := range all.Engines(env) {
			tbl, err := e.Create("item", workload.ItemSchema())
			if err != nil {
				b.Fatal(err)
			}
			if err := workload.Generate(256, workload.Item, func(j uint64, rec schema.Record) error {
				_, err := tbl.Insert(rec)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			c, err := engine.Classify(e, tbl)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, c)
			tbl.Free()
		}
		if len(rows) != 10 {
			b.Fatal("missing engines")
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationLinearization measures the real cache effect of NSM vs
// DSM on an attribute-centric scan (the mechanism behind finding iii).
func BenchmarkAblationLinearizationNSM(b *testing.B) {
	benchFullScan(b, fix1(b).itemsRow, exec.Single(), figures.ItemWidth)
}

// BenchmarkAblationLinearizationDSM is the DSM counterpart.
func BenchmarkAblationLinearizationDSM(b *testing.B) {
	benchFullScan(b, fix1(b).itemsCol, exec.Single(), figures.PriceSize)
}

// BenchmarkAblationThreadMgmt isolates the real thread-management cost on
// a 150-element workload (the mechanism behind finding i).
func BenchmarkAblationThreadMgmtSingle(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.Single(), figures.PriceSize)
}

// BenchmarkAblationThreadMgmtMulti spawns the paper's eight workers for
// the same tiny input.
func BenchmarkAblationThreadMgmtMulti(b *testing.B) {
	benchSum150(b, fix1(b).itemsCol, exec.MultiN(8), figures.PriceSize)
}

// BenchmarkAblationVolcano compares tuple-at-a-time iteration against the
// bulk operator on the same NSM data (Section II-A's processing models).
func BenchmarkAblationVolcano(b *testing.B) {
	fixtures(b)
	const n = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := exec.NewRowIterator(fix.itemsRow, n)
		if _, err := exec.SumFloat64Volcano(it, workload.ItemPriceCol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBulk is the bulk-operator counterpart of
// BenchmarkAblationVolcano over the same rows.
func BenchmarkAblationBulk(b *testing.B) {
	fixtures(b)
	const n = 100_000
	pieces, err := exec.ColumnView(fix.itemsRow, workload.ItemPriceCol, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.SumFloat64(exec.Single(), pieces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptive runs the reference engine through a shifting
// HTAP trace with the advisor on vs off, reporting simulated time.
func benchAdaptive(b *testing.B, adapt bool) {
	for i := 0; i < b.N; i++ {
		env := engine.NewEnv()
		e := core.New(env, core.Options{ChunkRows: 16384, HotChunks: 1, DevicePlacement: true})
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			b.Fatal(err)
		}
		ct := tbl.(*core.Table)
		if err := workload.Generate(50_000, workload.Item, func(j uint64, rec schema.Record) error {
			_, err := ct.Insert(rec)
			return err
		}); err != nil {
			b.Fatal(err)
		}
		// Identical operation sequence for both variants; only the Adapt
		// calls differ. Phase 1: OLTP. Phase 2: a first analytic burst
		// that (with the advisor on) teaches the engine the shift.
		// Phase 3: the steady analytic workload whose cost the advisor
		// should have reduced.
		for j := uint64(0); j < 500; j++ {
			if _, err := ct.Get(j % 50_000); err != nil {
				b.Fatal(err)
			}
		}
		if adapt {
			if _, err := ct.Adapt(); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 5; j++ {
			if _, err := ct.SumFloat64(workload.ItemPriceCol); err != nil {
				b.Fatal(err)
			}
		}
		if adapt {
			if _, err := ct.Adapt(); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < 40; j++ {
			if _, err := ct.SumFloat64(workload.ItemPriceCol); err != nil {
				b.Fatal(err)
			}
		}
		reportSim(b, env.Clock.ElapsedNs())
		ct.Free()
	}
}

// BenchmarkAblationAdaptiveOn enables the layout advisor.
func BenchmarkAblationAdaptiveOn(b *testing.B) { benchAdaptive(b, true) }

// BenchmarkAblationAdaptiveOff disables it.
func BenchmarkAblationAdaptiveOff(b *testing.B) { benchAdaptive(b, false) }

// BenchmarkAblationDelegationVsReplication compares the storage cost of
// the two fragment schemes over the same data: the reference engine's
// delegation (hot→cold moves) against Fractured Mirrors' replication.
func BenchmarkAblationDelegation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := engine.NewEnv()
		e := core.New(env, core.Options{ChunkRows: 1024, HotChunks: 1})
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			b.Fatal(err)
		}
		if err := workload.Generate(10_000, workload.Item, func(j uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(env.Host.Used())/(1<<20), "MiB")
		tbl.Free()
	}
}

// BenchmarkAblationReplication is the replication counterpart.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := engine.NewEnv()
		e := all.ByName(env, "Fractured Mirrors")
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			b.Fatal(err)
		}
		if err := workload.Generate(10_000, workload.Item, func(j uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(env.Host.Used())/(1<<20), "MiB")
		tbl.Free()
	}
}

// BenchmarkReferenceEngineHTAP measures the end-to-end facade under a
// mixed workload (ops/op are whole HTAP episodes).
func BenchmarkReferenceEngineHTAP(b *testing.B) {
	db := Open(Options{ChunkRows: 4096, HotChunks: 2})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		b.Fatal(err)
	}
	defer tbl.Free()
	for i := uint64(0); i < 50_000; i++ {
		if _, err := tbl.Insert(Item(i)); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := uint64(r.Int63n(50_000))
		if _, err := tbl.Get(row); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Update(row, ItemPriceColumn, FloatValue(1)); err != nil {
			b.Fatal(err)
		}
		if i%100 == 0 {
			if _, err := tbl.SumFloat64(ItemPriceColumn); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationCompression measures the sealed-base compression of
// L-Store on the item workload: scan speed over compressed vs raw base
// pages, with the achieved ratio as a metric.
func BenchmarkAblationCompressionSealedScan(b *testing.B) {
	env := engine.NewEnv()
	e := all.ByName(env, "L-Store")
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		b.Fatal(err)
	}
	defer tbl.Free()
	const n = 200_000
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(rec)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	type sealer interface {
		Merge() error
		CompressionRatio() float64
	}
	s := tbl.(sealer)
	if err := s.Merge(); err != nil {
		b.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := tbl.SumFloat64(workload.ItemPriceCol)
		if err != nil {
			b.Fatal(err)
		}
		if sum < want-1 || sum > want+1 {
			b.Fatalf("sum = %v", sum)
		}
	}
	b.StopTimer()
	b.ReportMetric(s.CompressionRatio(), "ratio")
}

// BenchmarkAblationCompressionRawScan is the pre-merge (uncompressed)
// counterpart.
func BenchmarkAblationCompressionRawScan(b *testing.B) {
	env := engine.NewEnv()
	e := all.ByName(env, "L-Store")
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		b.Fatal(err)
	}
	defer tbl.Free()
	const n = 200_000
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(rec)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := tbl.SumFloat64(workload.ItemPriceCol)
		if err != nil {
			b.Fatal(err)
		}
		if sum < want-1 || sum > want+1 {
			b.Fatalf("sum = %v", sum)
		}
	}
}

// BenchmarkPKLookup measures the Q1 path: hash-indexed point access vs a
// full position scan would be no contest; this pins the index cost.
func BenchmarkPKLookup(b *testing.B) {
	db := Open(Options{ChunkRows: 4096})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		b.Fatal(err)
	}
	defer tbl.Free()
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		if _, err := tbl.Insert(Item(i)); err != nil {
			b.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := r.Int63n(n)
		rec, err := tbl.GetByPK(pk)
		if err != nil || rec[0].I != pk {
			b.Fatalf("GetByPK(%d) = %v, %v", pk, rec, err)
		}
	}
}
