module hybridstore

go 1.22
